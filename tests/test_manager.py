"""Tests for the Manager's per-iteration schedule (§3.2 overlap semantics)."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.core.manager import ROUND_LOOP_LIMIT
from repro.graph.generators import social_graph
from repro.graph.properties import best_source

from conftest import TEST_SCALE, make_spec_for


@pytest.fixture(scope="module")
def graph():
    return social_graph(800, 12000, seed=77)


def run(graph, cfg, edge_fraction=0.4, algo="CC", spans=False):
    spec = make_spec_for(graph, edge_fraction=edge_fraction)
    eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg,
                        record_spans=spans)
    kwargs = {"source": best_source(graph)} if algo in ("BFS", "SSSP") else {}
    res = eng.run(graph, make_program(algo, **kwargs))
    return eng, res


class TestOverlap:
    def test_overlapped_not_slower(self, graph):
        _, seq = run(graph, AsceticConfig(overlap=False))
        _, ovl = run(graph, AsceticConfig(overlap=True))
        assert ovl.elapsed_seconds <= seq.elapsed_seconds

    def test_same_bytes_either_way(self, graph):
        """Overlap changes *when*, never *what* moves."""
        _, seq = run(graph, AsceticConfig(overlap=False, replacement=False))
        _, ovl = run(graph, AsceticConfig(overlap=True, replacement=False))
        assert seq.metrics.bytes_h2d == ovl.metrics.bytes_h2d

    def test_overlap_hides_gather_behind_static_compute(self, graph):
        """With overlap, elapsed < sum of all phase components."""
        _, ovl = run(graph, AsceticConfig(overlap=True, replacement=False))
        ph = ovl.metrics.phase_seconds
        component_sum = sum(
            ph.get(k, 0.0) for k in ("Tsr", "Tfilling", "Ttransfer", "Tondemand")
        )
        assert ovl.elapsed_seconds < component_sum

    def test_concurrent_lanes_in_timeline(self, graph):
        eng, res = run(graph, AsceticConfig(overlap=True), spans=True)
        # Somewhere, a gpu span and a cpu span overlap in time.
        spans = res and eng  # silence lints; spans accessed via engine run
        # Re-run with span recording to inspect.
        spec = make_spec_for(graph, edge_fraction=0.4)
        eng = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE, record_spans=True,
            config=AsceticConfig(overlap=True),
        )
        from repro.gpusim.device import SimulatedGPU  # noqa: F401

        result = eng.run(graph, make_program("CC"))
        assert result.elapsed_seconds > 0


class TestAdaptiveRepartition:
    def test_triggers_on_overflowing_cold_static(self):
        """A rear-filled static region is cold for an id-local BFS wave
        starting at low ids; a tiny on-demand region overflows — Eq. 3
        must fire."""
        from repro.graph.generators import web_graph

        wg = web_graph(2000, 24000, seed=5)
        spec = make_spec_for(wg, edge_fraction=0.5)
        cfg = AsceticConfig(fill="rear", forced_ratio=0.98, adaptive=True)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(wg, make_program("BFS", source=0))
        assert res.extra["repartitions"] >= 1

    def test_disabled_never_repartitions(self, graph):
        spec = make_spec_for(graph, edge_fraction=0.5)
        cfg = AsceticConfig(fill="rear", forced_ratio=0.98, adaptive=False)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("CC"))
        assert res.extra["repartitions"] == 0

    def test_repartition_returns_memory_to_ondemand(self, graph):
        spec = make_spec_for(graph, edge_fraction=0.5)
        cfg = AsceticConfig(fill="rear", forced_ratio=0.98, adaptive=True)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        eng.run(graph, make_program("CC"))
        if any(o.repartitioned for o in eng._outcomes):
            avail = spec.memory_bytes - graph.vertex_state_bytes
            assert eng._static_alloc.nbytes + eng._ondemand_alloc.nbytes == avail

    def test_lazy_warmup_protected(self, graph):
        """Adaptive check must not shrink an (empty) lazily-filled region."""
        spec = make_spec_for(graph, edge_fraction=0.5)
        cfg = AsceticConfig(fill="lazy", adaptive=True)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("CC"))
        assert eng._region.capacity_chunks > 0
        assert sum(o.promoted_chunks for o in eng._outcomes) > 0


class TestStreamingAggregate:
    def test_many_rounds_charged_in_aggregate(self, graph):
        """A degenerate on-demand region produces thousands of rounds; the
        aggregate path must charge them without looping and remain worse
        than a healthy configuration (the Fig. 10 right-edge collapse)."""
        spec = make_spec_for(graph, edge_fraction=0.5)
        collapse = AsceticConfig(forced_ratio=1.0, adaptive=False, replacement=False)
        healthy = AsceticConfig(forced_ratio=0.9, adaptive=False, replacement=False)
        _, bad = run(graph, collapse, edge_fraction=0.5)
        _, good = run(graph, healthy, edge_fraction=0.5)
        assert bad.elapsed_seconds > good.elapsed_seconds
        # The collapse comes from per-round fixed costs: many transfers.
        assert bad.metrics.h2d_transfers > ROUND_LOOP_LIMIT

    def test_aggregate_matches_loop_totals(self, graph):
        """Bytes and edges charged by the aggregate path equal the looped
        path's for the same plan volumes (phases may differ in timing)."""
        spec = make_spec_for(graph, edge_fraction=0.5)
        cfg = AsceticConfig(forced_ratio=1.0, adaptive=False, replacement=False)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("BFS", source=best_source(graph)))
        m = res.metrics
        assert m.edges_processed > 0
        assert m.bytes_h2d > 0


class TestSwapCausality:
    """§3.4 replacement must respect causality: the H2D swap copy cannot
    start before the CPU finishes staging the incoming chunks.  Without the
    gate, the copy lane (idle during the on-demand compute window) starts
    the swap mid-gather, understating Tswap."""

    @staticmethod
    def _forced_swap_iteration():
        """Drive one iteration that is guaranteed to plan a swap.

        Front-filled region on an id-local web graph, active mask over the
        rear ids only: the touch counts mark every resident (front) chunk
        stale and the absent (rear) chunks hot, and the long on-demand
        compute leaves the copy lane a wide §3.4 window.
        """
        from repro.core.manager import run_iteration
        from repro.core.replacement import HotnessTable
        from repro.core.static_region import StaticRegion
        from repro.graph.generators import web_graph
        from repro.gpusim.device import GPUSpec, SimulatedGPU

        wg = web_graph(3000, 36000, seed=9)
        region = StaticRegion(wg, capacity_bytes=wg.edge_array_bytes // 2,
                              chunk_bytes=1024, fill="front",
                              fragment_chunks=4)
        spec = GPUSpec(memory_bytes=wg.dataset_bytes * 2)
        gpu = SimulatedGPU(spec, record_events=True,
                           charge_scale=1.0 / TEST_SCALE)
        static_alloc = gpu.memory.alloc(
            "static_region", region.capacity_chunks * region.chunk_bytes)
        ondemand_alloc = gpu.memory.alloc(
            "ondemand", max(wg.edge_array_bytes // 4, region.chunk_bytes))
        program = make_program("CC")
        state = program.init_state(wg)
        active = np.zeros(wg.n_vertices, dtype=bool)
        active[2 * wg.n_vertices // 3:] = True
        state.active = active
        hotness = HotnessTable(region.n_chunks, policy="last")
        out = run_iteration(gpu, wg, program, state, region, hotness,
                            static_alloc, ondemand_alloc, adaptive=False,
                            fragment_chunks=4)
        return gpu, out

    def test_scenario_actually_swaps(self):
        _, out = self._forced_swap_iteration()
        assert out.swap_bytes > 0

    def test_swap_transfer_waits_for_gather(self):
        """Regression: pre-fix the H2D swap ignored the gather's completion
        (no ``after=`` gate) and started as soon as the copy lane was free,
        i.e. *before* its data existed."""
        gpu, out = self._forced_swap_iteration()
        assert out.swap_bytes > 0, "scenario failed to trigger a swap"
        events = gpu.events.events
        gathers = [e for e in events if e.label == "swap-gather"]
        swaps = [e for e in events if e.label == "static-swap"]
        assert len(gathers) == 1 and len(swaps) == 1
        assert swaps[0].start >= gathers[0].end - 1e-12, (
            f"static-swap started at {swaps[0].start} while its gather "
            f"ran until {gathers[0].end}"
        )

    def test_engine_swap_events_ordered(self, graph):
        """Every swap pair in a full engine run obeys the same ordering."""
        spec = make_spec_for(graph, edge_fraction=0.4)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE,
                            record_events=True,
                            config=AsceticConfig(fill="front",
                                                 replacement=True))
        res = eng.run(graph, make_program("PR", tol=1e-2))
        last_gather_end = None
        for e in res.event_log.events:
            if e.label == "swap-gather":
                last_gather_end = e.end
            elif e.label == "static-swap":
                assert last_gather_end is not None
                assert e.start >= last_gather_end - 1e-12

    def test_swap_scheduling_never_changes_values(self, graph):
        """The fixed swap path is pure scheduling: results stay
        bit-identical with replacement on or off."""
        _, with_swaps = run(graph, AsceticConfig(fill="front",
                                                 replacement=True))
        _, without = run(graph, AsceticConfig(fill="front",
                                              replacement=False))
        assert np.array_equal(with_swaps.values, without.values)


class TestReplacementScheduling:
    def test_swaps_happen_for_pr_front_fill(self, graph):
        spec = make_spec_for(graph, edge_fraction=0.4)
        cfg = AsceticConfig(fill="front", replacement=True)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("PR", tol=1e-2))
        # Replacement is allowed but bounded by the on-demand window.
        assert res.extra["swap_bytes"] >= 0

    def test_disabled_replacement_moves_nothing(self, graph):
        spec = make_spec_for(graph, edge_fraction=0.4)
        cfg = AsceticConfig(fill="front", replacement=False)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("PR", tol=1e-2))
        assert res.extra["swap_bytes"] == 0
