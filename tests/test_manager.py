"""Tests for the Manager's per-iteration schedule (§3.2 overlap semantics)."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.core.manager import ROUND_LOOP_LIMIT
from repro.graph.generators import social_graph
from repro.graph.properties import best_source

from conftest import TEST_SCALE, make_spec_for


@pytest.fixture(scope="module")
def graph():
    return social_graph(800, 12000, seed=77)


def run(graph, cfg, edge_fraction=0.4, algo="CC", spans=False):
    spec = make_spec_for(graph, edge_fraction=edge_fraction)
    eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg,
                        record_spans=spans)
    kwargs = {"source": best_source(graph)} if algo in ("BFS", "SSSP") else {}
    res = eng.run(graph, make_program(algo, **kwargs))
    return eng, res


class TestOverlap:
    def test_overlapped_not_slower(self, graph):
        _, seq = run(graph, AsceticConfig(overlap=False))
        _, ovl = run(graph, AsceticConfig(overlap=True))
        assert ovl.elapsed_seconds <= seq.elapsed_seconds

    def test_same_bytes_either_way(self, graph):
        """Overlap changes *when*, never *what* moves."""
        _, seq = run(graph, AsceticConfig(overlap=False, replacement=False))
        _, ovl = run(graph, AsceticConfig(overlap=True, replacement=False))
        assert seq.metrics.bytes_h2d == ovl.metrics.bytes_h2d

    def test_overlap_hides_gather_behind_static_compute(self, graph):
        """With overlap, elapsed < sum of all phase components."""
        _, ovl = run(graph, AsceticConfig(overlap=True, replacement=False))
        ph = ovl.metrics.phase_seconds
        component_sum = sum(
            ph.get(k, 0.0) for k in ("Tsr", "Tfilling", "Ttransfer", "Tondemand")
        )
        assert ovl.elapsed_seconds < component_sum

    def test_concurrent_lanes_in_timeline(self, graph):
        eng, res = run(graph, AsceticConfig(overlap=True), spans=True)
        # Somewhere, a gpu span and a cpu span overlap in time.
        spans = res and eng  # silence lints; spans accessed via engine run
        # Re-run with span recording to inspect.
        spec = make_spec_for(graph, edge_fraction=0.4)
        eng = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE, record_spans=True,
            config=AsceticConfig(overlap=True),
        )
        from repro.gpusim.device import SimulatedGPU  # noqa: F401

        result = eng.run(graph, make_program("CC"))
        assert result.elapsed_seconds > 0


class TestAdaptiveRepartition:
    def test_triggers_on_overflowing_cold_static(self):
        """A rear-filled static region is cold for an id-local BFS wave
        starting at low ids; a tiny on-demand region overflows — Eq. 3
        must fire."""
        from repro.graph.generators import web_graph

        wg = web_graph(2000, 24000, seed=5)
        spec = make_spec_for(wg, edge_fraction=0.5)
        cfg = AsceticConfig(fill="rear", forced_ratio=0.98, adaptive=True)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(wg, make_program("BFS", source=0))
        assert res.extra["repartitions"] >= 1

    def test_disabled_never_repartitions(self, graph):
        spec = make_spec_for(graph, edge_fraction=0.5)
        cfg = AsceticConfig(fill="rear", forced_ratio=0.98, adaptive=False)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("CC"))
        assert res.extra["repartitions"] == 0

    def test_repartition_returns_memory_to_ondemand(self, graph):
        spec = make_spec_for(graph, edge_fraction=0.5)
        cfg = AsceticConfig(fill="rear", forced_ratio=0.98, adaptive=True)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        eng.run(graph, make_program("CC"))
        if any(o.repartitioned for o in eng._outcomes):
            avail = spec.memory_bytes - graph.vertex_state_bytes
            assert eng._static_alloc.nbytes + eng._ondemand_alloc.nbytes == avail

    def test_lazy_warmup_protected(self, graph):
        """Adaptive check must not shrink an (empty) lazily-filled region."""
        spec = make_spec_for(graph, edge_fraction=0.5)
        cfg = AsceticConfig(fill="lazy", adaptive=True)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("CC"))
        assert eng._region.capacity_chunks > 0
        assert sum(o.promoted_chunks for o in eng._outcomes) > 0


class TestStreamingAggregate:
    def test_many_rounds_charged_in_aggregate(self, graph):
        """A degenerate on-demand region produces thousands of rounds; the
        aggregate path must charge them without looping and remain worse
        than a healthy configuration (the Fig. 10 right-edge collapse)."""
        spec = make_spec_for(graph, edge_fraction=0.5)
        collapse = AsceticConfig(forced_ratio=1.0, adaptive=False, replacement=False)
        healthy = AsceticConfig(forced_ratio=0.9, adaptive=False, replacement=False)
        _, bad = run(graph, collapse, edge_fraction=0.5)
        _, good = run(graph, healthy, edge_fraction=0.5)
        assert bad.elapsed_seconds > good.elapsed_seconds
        # The collapse comes from per-round fixed costs: many transfers.
        assert bad.metrics.h2d_transfers > ROUND_LOOP_LIMIT

    def test_aggregate_matches_loop_totals(self, graph):
        """Bytes and edges charged by the aggregate path equal the looped
        path's for the same plan volumes (phases may differ in timing)."""
        spec = make_spec_for(graph, edge_fraction=0.5)
        cfg = AsceticConfig(forced_ratio=1.0, adaptive=False, replacement=False)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("BFS", source=best_source(graph)))
        m = res.metrics
        assert m.edges_processed > 0
        assert m.bytes_h2d > 0


class TestSwapCausality:
    """§3.4 replacement must respect causality: the H2D swap copy cannot
    start before the CPU finishes staging the incoming chunks.  Without the
    gate, the copy lane (idle during the on-demand compute window) starts
    the swap mid-gather, understating Tswap."""

    @staticmethod
    def _forced_swap_iteration():
        """Drive one iteration that is guaranteed to plan a swap.

        Front-filled region on an id-local web graph, active mask over the
        rear ids only: the touch counts mark every resident (front) chunk
        stale and the absent (rear) chunks hot, and the long on-demand
        compute leaves the copy lane a wide §3.4 window.
        """
        from repro.core.manager import run_iteration
        from repro.core.replacement import HotnessTable
        from repro.core.static_region import StaticRegion
        from repro.graph.generators import web_graph
        from repro.gpusim.device import GPUSpec, SimulatedGPU

        wg = web_graph(3000, 36000, seed=9)
        region = StaticRegion(wg, capacity_bytes=wg.edge_array_bytes // 2,
                              chunk_bytes=1024, fill="front",
                              fragment_chunks=4)
        spec = GPUSpec(memory_bytes=wg.dataset_bytes * 2)
        gpu = SimulatedGPU(spec, record_events=True,
                           charge_scale=1.0 / TEST_SCALE)
        static_alloc = gpu.memory.alloc(
            "static_region", region.capacity_chunks * region.chunk_bytes)
        ondemand_alloc = gpu.memory.alloc(
            "ondemand", max(wg.edge_array_bytes // 4, region.chunk_bytes))
        program = make_program("CC")
        state = program.init_state(wg)
        active = np.zeros(wg.n_vertices, dtype=bool)
        active[2 * wg.n_vertices // 3:] = True
        state.active = active
        hotness = HotnessTable(region.n_chunks, policy="last")
        with gpu.iteration(0):  # stamp events as engines do
            out = run_iteration(gpu, wg, program, state, region, hotness,
                                static_alloc, ondemand_alloc, adaptive=False,
                                fragment_chunks=4)
        return gpu, out

    def test_scenario_actually_swaps(self):
        _, out = self._forced_swap_iteration()
        assert out.swap_bytes > 0

    def test_swap_transfer_waits_for_gather(self):
        """Regression: pre-fix the H2D swap ignored the gather's completion
        (no ``after=`` gate) and started as soon as the copy lane was free,
        i.e. *before* its data existed."""
        gpu, out = self._forced_swap_iteration()
        assert out.swap_bytes > 0, "scenario failed to trigger a swap"
        events = gpu.events.events
        gathers = [e for e in events if e.label == "swap-gather"]
        swaps = [e for e in events if e.label == "static-swap"]
        assert len(gathers) == 1 and len(swaps) == 1
        assert swaps[0].start >= gathers[0].end - 1e-12, (
            f"static-swap started at {swaps[0].start} while its gather "
            f"ran until {gathers[0].end}"
        )

    def test_engine_swap_events_ordered(self, graph):
        """Every swap pair in a full engine run obeys the same ordering."""
        spec = make_spec_for(graph, edge_fraction=0.4)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE,
                            record_events=True,
                            config=AsceticConfig(fill="front",
                                                 replacement=True))
        res = eng.run(graph, make_program("PR", tol=1e-2))
        last_gather_end = None
        for e in res.event_log.events:
            if e.label == "swap-gather":
                last_gather_end = e.end
            elif e.label == "static-swap":
                assert last_gather_end is not None
                assert e.start >= last_gather_end - 1e-12

    def test_swap_scheduling_never_changes_values(self, graph):
        """The fixed swap path is pure scheduling: results stay
        bit-identical with replacement on or off."""
        _, with_swaps = run(graph, AsceticConfig(fill="front",
                                                 replacement=True))
        _, without = run(graph, AsceticConfig(fill="front",
                                              replacement=False))
        assert np.array_equal(with_swaps.values, without.values)


class TestReplacementScheduling:
    def test_swaps_happen_for_pr_front_fill(self, graph):
        spec = make_spec_for(graph, edge_fraction=0.4)
        cfg = AsceticConfig(fill="front", replacement=True)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("PR", tol=1e-2))
        # Replacement is allowed but bounded by the on-demand window.
        assert res.extra["swap_bytes"] >= 0

    def test_disabled_replacement_moves_nothing(self, graph):
        spec = make_spec_for(graph, edge_fraction=0.4)
        cfg = AsceticConfig(fill="front", replacement=False)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(graph, make_program("PR", tol=1e-2))
        assert res.extra["swap_bytes"] == 0


class TestPhaseAttribution:
    """Regression: every second a lane spends inside an engine iteration
    must be attributed to some Fig. 8 phase.  Pre-fix, the replacement
    server's CPU staging (``swap-gather``) was submitted outside any
    ``gpu.phase(...)`` context, so its time silently vanished from the
    phase breakdown (the Fig. 8 bars under-counted ``Tswap``)."""

    @staticmethod
    def _orphans(events):
        """Nonzero-duration lane ops inside an iteration with no phase.

        Run-level setup/teardown (vertex-state upload, result download)
        happens outside the iteration loop and outside Fig. 8's scope; the
        iteration context stamp distinguishes the two.
        """
        return [e for e in events
                if e.lane and e.end > e.start
                and e.iteration is not None and e.phase is None]

    def test_forced_swap_iteration_has_no_unattributed_time(self):
        gpu, out = TestSwapCausality._forced_swap_iteration()
        assert out.swap_bytes > 0
        orphans = self._orphans(gpu.events.events)
        assert orphans == [], (
            f"{len(orphans)} nonzero-duration events carry no phase: "
            f"{[(e.lane, e.label) for e in orphans[:5]]}"
        )

    def test_swap_gather_charged_to_tswap(self):
        gpu, out = TestSwapCausality._forced_swap_iteration()
        assert out.swap_bytes > 0
        gathers = [e for e in gpu.events.events if e.label == "swap-gather"]
        assert gathers and all(e.phase == "Tswap" for e in gathers)
        # Both halves of the swap land in the same bucket.
        swap_dur = sum(e.end - e.start for e in gpu.events.events
                       if e.label in ("swap-gather", "static-swap"))
        assert gpu.metrics.phase_seconds["Tswap"] == pytest.approx(swap_dur)

    def test_full_engine_run_has_no_unattributed_time(self, graph):
        """The same invariant over a whole swap-active engine run."""
        spec = make_spec_for(graph, edge_fraction=0.4)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE,
                            record_events=True,
                            config=AsceticConfig(fill="front",
                                                 replacement=True))
        res = eng.run(graph, make_program("PR", tol=1e-2))
        assert self._orphans(res.event_log.events) == []


def _round_chain_loop(gpu, plan, program, after=0.0):
    """The manager's overlapped per-round schedule, verbatim."""
    prev = after
    for rnd in plan.iter_rounds():
        with gpu.phase("Tfilling"):
            t_gather = gpu.cpu_gather(rnd.nbytes, label="od-gather",
                                      after=prev)
        with gpu.phase("Ttransfer"):
            t_xfer = gpu.h2d(rnd.nbytes, label="od-transfer", after=t_gather)
        with gpu.phase("Tondemand"):
            gpu.edge_kernel(rnd.n_edges, label="od-compute",
                            atomics=program.atomics, after=t_xfer)
        prev = t_gather


class TestRoundBoundaryParity:
    """Regression: crossing ROUND_LOOP_LIMIT (the per-round loop → aggregate
    charging switch) must not move any counter.  Pre-fix the aggregate path
    charged the PCIe payload as ``payload_bytes(ceil(total/n)) * n`` while
    the loop path burst-rounded each round's exact share, so a 64→65 round
    crossing produced a spurious bytes/duration discontinuity whenever the
    share split straddled a burst boundary."""

    BURST = None  # set from the spec in _plans

    @staticmethod
    def _plan(n_rounds, extra_bytes, n_edges=123_457):
        from repro.core.ondemand import OnDemandPlan
        from repro.gpusim.device import GPUSpec
        burst = GPUSpec(memory_bytes=1 << 20).pcie.burst
        # hi rounds land one burst above lo rounds: the exact case the old
        # per-round-average formula over-charged.
        total = n_rounds * burst + extra_bytes
        return OnDemandPlan(n_vertices=1000, n_edges=n_edges,
                            edge_bytes=total, request_bytes=0,
                            n_rounds=n_rounds)

    @pytest.mark.parametrize("n_rounds", [ROUND_LOOP_LIMIT,
                                          ROUND_LOOP_LIMIT + 1, 101])
    @pytest.mark.parametrize("extra_bytes", [0, 35, 63])
    def test_aggregate_charges_equal_loop_charges(self, n_rounds, extra_bytes):
        from repro.core.manager import _stream_aggregate
        from repro.gpusim.device import GPUSpec, SimulatedGPU

        plan = self._plan(n_rounds, extra_bytes)
        program = make_program("CC")
        looped = SimulatedGPU(GPUSpec(memory_bytes=1 << 30))
        _round_chain_loop(looped, plan, program)
        agg = SimulatedGPU(GPUSpec(memory_bytes=1 << 30))
        _stream_aggregate(agg, plan, program, after=0.0, sequential=False)

        ml, ma = looped.metrics, agg.metrics
        assert ma.bytes_h2d == ml.bytes_h2d
        assert ma.h2d_transfers == ml.h2d_transfers
        assert ma.kernel_launches == ml.kernel_launches
        assert ma.edges_processed == ml.edges_processed
        for phase, dur in ml.phase_seconds.items():
            assert ma.phase_seconds[phase] == pytest.approx(dur, rel=1e-12)

    def test_limit_crossing_is_continuous(self):
        """Total charged bytes grow smoothly across the 64→65 boundary."""
        from repro.core.manager import _stream_aggregate
        from repro.gpusim.device import GPUSpec, SimulatedGPU

        import math

        program = make_program("CC")
        per_round = []
        burst = GPUSpec(memory_bytes=1 << 30).pcie.burst
        for n_rounds in (ROUND_LOOP_LIMIT, ROUND_LOOP_LIMIT + 1):
            plan = self._plan(n_rounds, extra_bytes=35)
            gpu = SimulatedGPU(GPUSpec(memory_bytes=1 << 30))
            if n_rounds > ROUND_LOOP_LIMIT:
                _stream_aggregate(gpu, plan, program, after=0.0,
                                  sequential=False)
            else:
                _round_chain_loop(gpu, plan, program)
            if n_rounds > ROUND_LOOP_LIMIT:
                # The old aggregate charged every round as if it carried the
                # *average* share, burst-rounded once and multiplied out —
                # collapsing the hi/lo round split the loop preserves.
                pcie = gpu.spec.pcie
                uniform = pcie.payload_bytes(
                    math.ceil(plan.edge_bytes / n_rounds)) * n_rounds
                assert gpu.metrics.bytes_h2d != uniform
            per_round.append(gpu.metrics.bytes_h2d / n_rounds)
        # Per-round charged payload stays flat across the boundary.  The hi/lo
        # round mix shifts slightly with n (extra bytes spread over one more
        # round), so allow ~1 % drift — the uniform-rounding bug this pins
        # against produced a full-burst (≈50 %) step here.
        assert per_round[1] == pytest.approx(per_round[0], rel=2e-2)
        assert abs(per_round[1] - per_round[0]) < burst // 16


class TestBatchedRoundScheduler:
    """The lean-mode array scheduler must replay the per-round loop's
    float operations exactly: identical Metrics, identical lane horizons."""

    @pytest.mark.parametrize("n_rounds", [1, 2, 7, 33, ROUND_LOOP_LIMIT])
    @pytest.mark.parametrize("n_edges", [0, 64, 999_331])
    def test_bit_identical_to_loop(self, n_rounds, n_edges):
        from repro.core.manager import _stream_rounds_batched
        from repro.core.ondemand import OnDemandPlan
        from repro.gpusim.device import GPUSpec, SimulatedGPU

        plan = OnDemandPlan(n_vertices=77, n_edges=n_edges,
                            edge_bytes=n_rounds * 17_003 + 29,
                            request_bytes=616, n_rounds=n_rounds)
        program = make_program("CC")
        looped = SimulatedGPU(GPUSpec(memory_bytes=1 << 30),
                              charge_scale=100.0)
        _round_chain_loop(looped, plan, program, after=1e-4)
        batched = SimulatedGPU(GPUSpec(memory_bytes=1 << 30),
                               charge_scale=100.0)
        _stream_rounds_batched(batched, plan, program, after=1e-4)

        assert batched.metrics.as_dict() == looped.metrics.as_dict()
        for lane in ("cpu", "copy", "gpu"):
            assert getattr(batched, lane).busy_until == \
                getattr(looped, lane).busy_until, lane


class TestSwapBudgetWindow:
    """Regression: the §3.4 replacement budget must be derived from what a
    swap H2D is actually *charged* (per-transfer latency + burst-rounded
    payload), not raw link bandwidth — otherwise the planned swap overruns
    the idle window it was supposed to hide inside."""

    @staticmethod
    def _gpu_and_region(chunk_bytes=1024, charge_scale=100.0):
        from repro.core.static_region import StaticRegion
        from repro.graph.generators import web_graph
        from repro.gpusim.device import GPUSpec, SimulatedGPU

        wg = web_graph(500, 6000, seed=11)
        region = StaticRegion(wg, capacity_bytes=wg.edge_array_bytes // 2,
                              chunk_bytes=chunk_bytes, fill="front")
        gpu = SimulatedGPU(GPUSpec(memory_bytes=wg.dataset_bytes * 2),
                           charge_scale=charge_scale)
        return gpu, region

    @pytest.mark.parametrize("window", [0.0, 1e-6, 1e-5, 3.7e-5, 1e-4,
                                        8.1e-4, 1e-2])
    @pytest.mark.parametrize("chunk_bytes", [256, 1024, 16 * 1024])
    def test_budgeted_swap_fits_window(self, window, chunk_bytes):
        from repro.core.manager import _swap_budget_chunks

        gpu, region = self._gpu_and_region(chunk_bytes=chunk_bytes)
        gpu.gpu.busy_until = window  # copy lane idle → window wide open
        budget = _swap_budget_chunks(gpu, region)
        assert budget >= 0
        if budget == 0:
            return
        # The manager transfers the whole swap as one H2D; its charged
        # duration must fit the window that justified the budget.
        moved = budget * region.chunk_bytes
        charged = gpu._scale(moved)
        dur = gpu.spec.pcie.transfer_seconds(charged)
        assert dur <= window * (1 + 1e-12), (
            f"budget {budget} chunks → H2D {dur:.3e}s overruns "
            f"window {window:.3e}s"
        )

    def test_engine_swap_h2d_completes_within_budget_window(self):
        """End to end: the forced-swap iteration's static-swap transfer
        occupies the copy lane for no longer than the idle window the
        budget was cut from (gather-gated start aside)."""
        gpu, out = TestSwapCausality._forced_swap_iteration()
        assert out.swap_bytes > 0
        swaps = [e for e in gpu.events.events if e.label == "static-swap"]
        assert len(swaps) == 1
        # The budget window was [copy.busy_until, gpu.busy_until] at plan
        # time; the transfer's *duration* is what the budget bounds.
        kernels = [e for e in gpu.events.events if e.label == "od-compute"]
        window_end = max(e.end for e in kernels) if kernels else swaps[0].end
        dur = swaps[0].end - swaps[0].start
        assert dur <= (window_end - swaps[0].start) * (1 + 1e-12) or \
            dur <= window_end * (1 + 1e-12)
