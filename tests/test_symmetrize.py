"""Tests for graph symmetrization and weakly-connected components."""

import numpy as np
import pytest

from repro.algorithms import ConnectedComponents
from repro.graph.csr import CSRGraph


class TestSymmetrized:
    def test_adds_reverse_arcs(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3)
        s = g.symmetrized()
        assert s.n_edges == 4
        assert not s.directed
        assert list(s.neighbors(1)) == [0, 2] or list(s.neighbors(1)) == [2, 0]

    def test_undirected_is_identity(self, small_social):
        assert small_social.symmetrized() is small_social

    def test_carries_weights(self):
        g = CSRGraph.from_edges([0], [1], 2, weights=[7])
        s = g.symmetrized()
        assert s.n_edges == 2
        assert set(s.weights.tolist()) == {7}

    def test_symmetric_edge_multiset(self, small_web):
        s = small_web.symmetrized()
        fwd = sorted(zip(s.edge_sources().tolist(), s.indices.tolist()))
        rev = sorted(zip(s.indices.tolist(), s.edge_sources().tolist()))
        assert fwd == rev


class TestWeaklyConnectedComponents:
    def test_wcc_via_symmetrize(self):
        # Directed chain 0→1→2 plus isolated 3: WCC = {0,1,2}, {3}.
        g = CSRGraph.from_edges([0, 1], [1, 2], 4)
        labels = ConnectedComponents().run_reference(g.symmetrized())
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == 3

    def test_wcc_matches_networkx(self, small_web):
        import networkx as nx

        labels = ConnectedComponents().run_reference(small_web.symmetrized())
        nxg = small_web.to_networkx()
        for comp in nx.weakly_connected_components(nxg):
            members = sorted(comp)
            assert len({int(labels[v]) for v in members}) == 1

    def test_directed_cc_differs_from_wcc(self):
        # 1→0: directed min-reaching-label leaves 1 alone; WCC merges them.
        g = CSRGraph.from_edges([1], [0], 2)
        directed = ConnectedComponents().run_reference(g)
        weak = ConnectedComponents().run_reference(g.symmetrized())
        assert directed[1] == 1
        assert weak[1] == 0
