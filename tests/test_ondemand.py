"""Tests for On-demand Engine planning."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ondemand import OFFSET_BYTES_PER_VERTEX, plan_ondemand
from repro.graph.generators import rmat_graph


@pytest.fixture()
def graph():
    return rmat_graph(7, 900, seed=17, directed=True)


class TestPlan:
    def test_empty_mask(self, graph):
        plan = plan_ondemand(graph, np.zeros(graph.n_vertices, bool), 1024)
        assert plan.n_rounds == 0
        assert plan.total_bytes == 0
        assert list(plan.iter_rounds()) == []

    def test_volumes(self, graph):
        mask = np.zeros(graph.n_vertices, dtype=bool)
        mask[:10] = True
        plan = plan_ondemand(graph, mask, 10**9)
        deg = graph.out_degree()[:10].sum()
        assert plan.n_edges == deg
        assert plan.edge_bytes == deg * graph.bytes_per_edge
        assert plan.request_bytes == 10 * OFFSET_BYTES_PER_VERTEX
        assert plan.n_vertices == 10

    def test_single_round_when_fits(self, graph):
        mask = np.ones(graph.n_vertices, dtype=bool)
        plan = plan_ondemand(graph, mask, 10**9)
        assert plan.n_rounds == 1

    def test_rounds_split_when_overflowing(self, graph):
        mask = np.ones(graph.n_vertices, dtype=bool)
        plan = plan_ondemand(graph, mask, plan_total := None or 500)
        assert plan.n_rounds == -(-plan.total_bytes // 500)

    def test_round_sums_match_totals(self, graph):
        mask = np.ones(graph.n_vertices, dtype=bool)
        plan = plan_ondemand(graph, mask, 777)
        rounds = list(plan.iter_rounds())
        assert sum(r.nbytes for r in rounds) == plan.total_bytes
        assert sum(r.n_edges for r in rounds) == plan.n_edges
        assert len(rounds) == plan.n_rounds

    def test_rounds_nearly_even(self, graph):
        mask = np.ones(graph.n_vertices, dtype=bool)
        plan = plan_ondemand(graph, mask, 777)
        sizes = [r.nbytes for r in plan.iter_rounds()]
        assert max(sizes) - min(sizes) <= 1

    def test_rounds_fit_region(self, graph):
        mask = np.ones(graph.n_vertices, dtype=bool)
        plan = plan_ondemand(graph, mask, 777)
        assert all(r.nbytes <= 777 for r in plan.iter_rounds())

    def test_degenerate_region_streams(self, graph):
        mask = np.ones(graph.n_vertices, dtype=bool)
        plan = plan_ondemand(graph, mask, 0)
        # Floored at 1 byte per round: pathological but defined.
        assert plan.n_rounds == plan.total_bytes

    @given(st.integers(0, 2**30 - 1), st.integers(1, 5000))
    def test_property_conservation(self, bits, region):
        g = rmat_graph(5, 300, seed=19, directed=True)
        mask = np.array([(bits >> (i % 30)) & 1 for i in range(g.n_vertices)], dtype=bool)
        plan = plan_ondemand(g, mask, region)
        rounds = list(plan.iter_rounds())
        assert sum(r.nbytes for r in rounds) == plan.total_bytes
        assert sum(r.n_edges for r in rounds) == plan.n_edges
        assert all(r.nbytes >= 0 and r.n_edges >= 0 for r in rounds)


class TestRoundShares:
    """The closed-form split must reproduce the iterative
    ``ceil(left / rounds_left)`` schedule round for round."""

    @staticmethod
    def _iterative(total, n_rounds):
        sizes, left = [], total
        for k in range(n_rounds, 0, -1):
            take = -(-left // k)
            sizes.append(take)
            left -= take
        return sizes

    @given(st.integers(0, 2**40), st.integers(1, 500))
    def test_property_matches_iterative_split(self, total, n_rounds):
        from repro.core.ondemand import round_shares

        hi, n_hi, lo, n_lo = round_shares(total, n_rounds)
        assert [hi] * n_hi + [lo] * n_lo == self._iterative(total, n_rounds)
        assert hi * n_hi + lo * n_lo == total
        assert n_hi + n_lo == n_rounds

    def test_zero_rounds(self):
        from repro.core.ondemand import round_shares

        assert round_shares(100, 0) == (0, 0, 0, 0)

    def test_matches_plan_iter_rounds(self, graph):
        from repro.core.ondemand import round_shares

        mask = np.ones(graph.n_vertices, dtype=bool)
        plan = plan_ondemand(graph, mask, 777)
        hi, n_hi, lo, n_lo = round_shares(plan.total_bytes, plan.n_rounds)
        sizes = [r.nbytes for r in plan.iter_rounds()]
        assert sizes == [hi] * n_hi + [lo] * n_lo
