"""Tests for the event-sourced accounting core (`repro.gpusim.events`)."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.core.ascetic import AsceticEngine
from repro.engines.partition_based import PartitionEngine
from repro.engines.subway import SubwayEngine
from repro.engines.uvm_engine import UVMEngine
from repro.graph.properties import best_source
from repro.gpusim.clock import VirtualClock
from repro.gpusim.device import GPUSpec, SimulatedGPU
from repro.gpusim.events import (
    COUNTER_FIELDS,
    EventLog,
    EventLogError,
    SimEvent,
    fold_lane_stats,
    fold_metrics,
    fold_phase_seconds,
    fold_spans,
    idle_breakdown,
    validate_log,
)
from repro.gpusim.metrics import Metrics
from repro.gpusim.stream import Lane

from conftest import TEST_SCALE, make_spec_for

ALL_ENGINES = [PartitionEngine, UVMEngine, SubwayEngine, AsceticEngine]


def ev(lane="gpu", kind="op", label="", start=0.0, end=1.0, **kw):
    return SimEvent(lane=lane, kind=kind, label=label, start=start, end=end, **kw)


class TestSimEvent:
    def test_duration(self):
        assert ev(start=1.0, end=3.5).duration == 2.5

    def test_instant(self):
        assert ev(lane="", start=2.0, end=2.0).is_instant
        assert not ev().is_instant

    def test_dict_round_trip(self):
        e = ev(lane="copy", kind="h2d", label="part3", start=0.5, end=1.25,
               phase="Ttransfer", iteration=4, bytes_h2d=1024,
               h2d_transfers=1, extra=(("note", 2.0),))
        assert SimEvent.from_dict(e.to_dict()) == e

    def test_dict_omits_defaults(self):
        d = ev().to_dict()
        assert set(d) == {"lane", "kind", "label", "start", "end"}

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ValueError):
            SimEvent.from_dict({"lane": "gpu", "kind": "op", "label": "",
                                "start": 0.0, "end": 1.0, "bogus": 7})


class TestFolds:
    def events(self):
        return [
            ev(lane="copy", kind="h2d", label="a", start=0.0, end=1.0,
               phase="Ttransfer", bytes_h2d=500, h2d_transfers=1),
            ev(lane="gpu", kind="kernel", label="b", start=1.0, end=4.0,
               phase="Tcompute", kernel_launches=1, edges_processed=99),
            ev(lane="", kind="uvm-fault", label="t", start=4.0, end=4.0,
               page_faults=3, pages_migrated=3, pages_evicted=1),
        ]

    def test_fold_metrics(self):
        m = fold_metrics(self.events())
        assert m.bytes_h2d == 500 and m.h2d_transfers == 1
        assert m.kernel_launches == 1 and m.edges_processed == 99
        assert m.page_faults == 3 and m.pages_migrated == 3
        assert m.pages_evicted == 1
        assert dict(m.phase_seconds) == {"Ttransfer": 1.0, "Tcompute": 3.0}

    def test_fold_spans_skips_instants(self):
        spans = fold_spans(self.events())
        assert [(s.lane, s.start, s.end) for s in spans] == [
            ("copy", 0.0, 1.0), ("gpu", 1.0, 4.0)
        ]

    def test_fold_phase_seconds(self):
        assert fold_phase_seconds(self.events()) == {
            "Ttransfer": 1.0, "Tcompute": 3.0
        }

    def test_fold_lane_stats(self):
        stats = fold_lane_stats(self.events())
        assert set(stats) == {"copy", "gpu"}
        assert stats["gpu"].busy_seconds == 3.0
        assert stats["gpu"].first_start == 1.0
        assert stats["gpu"].last_end == 4.0
        assert stats["gpu"].n_ops == 1

    def test_incremental_fold_matches_replay(self):
        log = EventLog(record=True)
        for e in self.events():
            log.emit(e)
        replay = fold_metrics(log.events)
        for name in COUNTER_FIELDS:
            assert getattr(replay, name) == getattr(log.metrics, name)
        assert dict(replay.phase_seconds) == dict(log.metrics.phase_seconds)

    def test_lean_mode_retains_nothing_but_folds_everything(self):
        log = EventLog(record=False)
        for e in self.events():
            log.emit(e)
        assert log.events == [] and log.n_events == 0
        assert log.metrics.bytes_h2d == 500
        assert log.busy_seconds("gpu") == 3.0
        assert log.idle_seconds("gpu", 10.0) == 7.0


class TestIdleBreakdown:
    def test_late_start_is_lead_not_stall(self):
        """A lane whose first op starts late led idle, it did not stall —
        the distinction the old ``horizon - busy_seconds`` could not make."""
        events = [
            ev(lane="gpu", start=6.0, end=8.0),
            ev(lane="gpu", start=9.0, end=10.0),
        ]
        b = idle_breakdown(events, "gpu", horizon=12.0)
        assert b.lead == 6.0
        assert b.stall == 1.0
        assert b.tail == 2.0
        assert b.busy == 3.0
        assert b.idle == 9.0
        assert b.idle_fraction == pytest.approx(0.75)
        # Totals agree with the undifferentiated subtraction.
        assert b.idle + b.busy == pytest.approx(b.horizon)

    def test_no_ops_all_lead(self):
        b = idle_breakdown([], "gpu", horizon=5.0)
        assert (b.lead, b.stall, b.tail, b.busy) == (5.0, 0.0, 0.0, 0.0)

    def test_from_recorded_log(self):
        gpu = SimulatedGPU(GPUSpec(memory_bytes=10**6), record_events=True)
        gpu.sync(gpu.cpu_gather(8 * 10**6))  # GPU idles through the gather
        gpu.sync(gpu.edge_kernel(1000))
        b = idle_breakdown(gpu.events, "gpu", gpu.clock.now)
        assert b.lead > 0 and b.stall == 0.0
        assert b.idle == pytest.approx(
            gpu.events.idle_seconds("gpu", gpu.clock.now))
        assert gpu.gpu_idle_fraction() == pytest.approx(b.idle_fraction)

    def test_lean_log_rejected(self):
        log = EventLog(record=False)
        with pytest.raises(EventLogError):
            idle_breakdown(log, "gpu", 1.0)


class TestPhaseContext:
    def test_events_stamped_with_context(self):
        gpu = SimulatedGPU(GPUSpec(memory_bytes=10**6), record_events=True)
        with gpu.phase("Tsr", iteration=2):
            gpu.edge_kernel(100)
        gpu.h2d(100)
        kernel, copy = gpu.events.events
        assert kernel.phase == "Tsr" and kernel.iteration == 2
        assert copy.phase is None and copy.iteration is None

    def test_phase_seconds_folded_from_events(self):
        gpu = SimulatedGPU(GPUSpec(memory_bytes=10**6), record_events=True)
        with gpu.phase("Ttransfer"):
            gpu.h2d(4096)
        e = gpu.events.events[0]
        assert gpu.metrics.phase_seconds["Ttransfer"] == e.duration


class TestValidator:
    def make_log(self, *events):
        log = EventLog(record=True)
        for e in events:
            log.emit(e)
        return log

    def test_valid_log_returns_fold(self):
        log = self.make_log(ev(start=0.0, end=1.0), ev(start=1.0, end=2.0))
        folded = validate_log(log)
        assert isinstance(folded, Metrics)

    def test_rejects_lean_log(self):
        with pytest.raises(EventLogError, match="lean"):
            validate_log(EventLog(record=False))

    def test_detects_lane_self_overlap(self):
        log = self.make_log(ev(start=0.0, end=2.0), ev(start=1.0, end=3.0))
        with pytest.raises(EventLogError, match="self-overlap"):
            validate_log(log)

    def test_detects_bad_interval(self):
        log = self.make_log(ev(start=3.0, end=1.0))
        with pytest.raises(EventLogError, match="bad interval"):
            validate_log(log)

    def test_detects_horizon_violation(self):
        log = self.make_log(ev(start=0.0, end=5.0))
        with pytest.raises(EventLogError, match="horizon"):
            validate_log(log, horizon=4.0)

    def test_detects_wide_instant(self):
        log = EventLog(record=True)
        log.events.append(ev(lane="", start=0.0, end=1.0))
        with pytest.raises(EventLogError, match="width"):
            validate_log(log)

    def test_detects_counter_divergence(self):
        log = self.make_log(ev(bytes_h2d=100))
        log.metrics.bytes_h2d += 1  # simulate an out-of-band poke
        with pytest.raises(EventLogError, match="bytes_h2d"):
            validate_log(log)

    def test_detects_external_metrics_divergence(self):
        log = self.make_log(ev(bytes_h2d=100))
        other = Metrics(bytes_h2d=99)
        with pytest.raises(EventLogError, match="reported metrics"):
            validate_log(log, metrics=other)

    def test_different_lanes_may_overlap(self):
        log = self.make_log(
            ev(lane="gpu", start=0.0, end=3.0),
            ev(lane="copy", start=1.0, end=2.0),
        )
        validate_log(log)


class TestLeanDefault:
    def test_engine_default_retains_no_events(self, small_social):
        spec = make_spec_for(small_social)
        src = best_source(small_social)
        engine = SubwayEngine(spec=spec, data_scale=TEST_SCALE)
        res = engine.run(small_social, make_program("BFS", source=src))
        assert res.event_log is None

    def test_gpu_default_is_lean(self):
        gpu = SimulatedGPU(GPUSpec(memory_bytes=10**6))
        gpu.h2d(1000)
        assert gpu.events.record is False
        assert gpu.events.events == []
        assert gpu.metrics.h2d_transfers == 1  # ...but folds still run

    def test_record_events_opt_in_attaches_log(self, small_social):
        spec = make_spec_for(small_social)
        src = best_source(small_social)
        engine = SubwayEngine(spec=spec, data_scale=TEST_SCALE,
                              record_events=True)
        res = engine.run(small_social, make_program("BFS", source=src))
        assert res.event_log is not None
        assert res.event_log.events
        assert res.metrics is res.event_log.metrics

    def test_recording_does_not_change_results(self, small_social):
        spec = make_spec_for(small_social)
        src = best_source(small_social)

        def run(**kw):
            return SubwayEngine(spec=spec, data_scale=TEST_SCALE, **kw).run(
                small_social, make_program("BFS", source=src))

        lean, recorded = run(), run(record_events=True)
        assert lean.elapsed_seconds == recorded.elapsed_seconds
        assert lean.metrics.as_dict() == recorded.metrics.as_dict()
        assert np.array_equal(lean.values, recorded.values)


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
@pytest.mark.parametrize("algo", ["BFS", "PR"])
class TestCrossEngineConsistency:
    """Satellite: folded-event metrics must equal legacy counters bit for
    bit, and per-phase span sums must equal ``phase_seconds``, on the full
    engine × algorithm grid."""

    def run(self, engine_cls, algo, graph):
        spec = make_spec_for(graph)
        if algo == "BFS":
            program = make_program("BFS", source=best_source(graph))
        else:
            program = make_program("PR", tol=1e-2)
        engine = engine_cls(spec=spec, data_scale=TEST_SCALE,
                            record_events=True)
        return engine.run(graph, program)

    def test_log_validates_and_folds_bit_identical(self, engine_cls, algo,
                                                   small_social):
        res = self.run(engine_cls, algo, small_social)
        folded = validate_log(res.event_log, metrics=res.metrics,
                              horizon=res.elapsed_seconds)
        for name in COUNTER_FIELDS:
            assert getattr(folded, name) == getattr(res.metrics, name), name
        assert dict(folded.phase_seconds) == dict(res.metrics.phase_seconds)

    def test_phase_span_sums_equal_phase_seconds(self, engine_cls, algo,
                                                 small_social):
        res = self.run(engine_cls, algo, small_social)
        sums = {}
        for e in res.event_log.events:
            if e.phase is not None and e.end > e.start:
                sums[e.phase] = sums.get(e.phase, 0.0) + (e.end - e.start)
        # Same events, same order, same additions → bit-identical sums.
        assert sums == dict(res.metrics.phase_seconds)

    def test_lane_busy_equals_event_sums(self, engine_cls, algo, small_social):
        res = self.run(engine_cls, algo, small_social)
        stats = fold_lane_stats(res.event_log.events)
        for lane, st in stats.items():
            assert st.busy_seconds == res.event_log.busy_seconds(lane)


class TestStandaloneLane:
    def test_lane_gets_private_log(self):
        lane = Lane("gpu", VirtualClock())
        assert isinstance(lane.log, EventLog)
        lane.submit(2.0)
        assert lane.busy_seconds == 2.0

    def test_shared_log_across_lanes(self):
        clock = VirtualClock()
        log = EventLog(record=True)
        a = Lane("gpu", clock, log=log)
        b = Lane("copy", clock, log=log)
        a.submit(1.0)
        b.submit(2.0)
        assert {e.lane for e in log.events} == {"gpu", "copy"}
