"""Behavioural tests for the Ascetic engine and its configuration space."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.algorithms.validate import reference_bfs_levels
from repro.core.ascetic import AsceticConfig, AsceticEngine
from repro.engines.subway import SubwayEngine
from repro.graph.properties import best_source

from conftest import TEST_SCALE, make_spec_for


def bfs_for(graph):
    return make_program("BFS", source=best_source(graph))


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = AsceticConfig()
        assert cfg.k == 0.10  # §3.3 default K
        assert cfg.chunk_bytes == 16 * 1024  # §3.4
        assert cfg.overlap and cfg.replacement and cfg.adaptive

    def test_with_replaces_fields(self):
        cfg = AsceticConfig().with_(overlap=False, k=0.2)
        assert not cfg.overlap and cfg.k == 0.2
        assert AsceticConfig().overlap  # original untouched

    def test_policy_auto_selection(self):
        cfg = AsceticConfig()
        assert cfg.policy_for(make_program("PR")) == "last"
        assert cfg.policy_for(make_program("BFS")) == "cumulative"
        assert cfg.policy_for(make_program("CC")) == "cumulative"

    def test_policy_forced(self):
        cfg = AsceticConfig(replacement_policy="last")
        assert cfg.policy_for(make_program("BFS")) == "last"


class TestCorrectness:
    @pytest.mark.parametrize("fill", ["front", "rear", "random", "lazy"])
    def test_values_correct_any_fill(self, fill, small_social):
        spec = make_spec_for(small_social)
        eng = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE, config=AsceticConfig(fill=fill)
        )
        res = eng.run(small_social, bfs_for(small_social))
        ref = reference_bfs_levels(small_social, best_source(small_social))
        assert np.array_equal(res.values, ref)

    @pytest.mark.parametrize("overlap", [True, False])
    @pytest.mark.parametrize("adaptive", [True, False])
    def test_values_correct_any_schedule(self, overlap, adaptive, small_social):
        spec = make_spec_for(small_social)
        cfg = AsceticConfig(overlap=overlap, adaptive=adaptive)
        res = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg).run(
            small_social, make_program("CC")
        )
        from repro.algorithms.validate import reference_cc_labels

        assert np.array_equal(res.values, reference_cc_labels(small_social))

    def test_deterministic(self, small_social):
        spec = make_spec_for(small_social)
        a = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        b = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.metrics.bytes_h2d == b.metrics.bytes_h2d


class TestRegionAccounting:
    def test_extras_reported(self, small_social):
        spec = make_spec_for(small_social)
        res = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, bfs_for(small_social)
        )
        for key in (
            "static_ratio",
            "static_prefill_bytes",
            "static_region_bytes",
            "ondemand_region_bytes",
            "swap_bytes",
            "repartitions",
        ):
            assert key in res.extra

    def test_eager_prefill_counted_and_separated(self, small_social):
        spec = make_spec_for(small_social)
        res = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE, config=AsceticConfig(fill="front")
        ).run(small_social, bfs_for(small_social))
        assert res.extra["static_prefill_bytes"] > 0
        assert res.processing_bytes_h2d < res.metrics.bytes_h2d

    def test_lazy_fill_no_prefill(self, small_social):
        spec = make_spec_for(small_social)
        res = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE, config=AsceticConfig(fill="lazy")
        ).run(small_social, bfs_for(small_social))
        assert res.extra["static_prefill_bytes"] == 0

    def test_regions_fit_device(self, small_social):
        spec = make_spec_for(small_social)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE)
        eng.run(small_social, bfs_for(small_social))
        total = (
            eng._static_alloc.nbytes
            + eng._ondemand_alloc.nbytes
            + small_social.vertex_state_bytes
        )
        assert total <= spec.memory_bytes

    def test_forced_ratio_respected(self, small_social):
        spec = make_spec_for(small_social)
        cfg = AsceticConfig(forced_ratio=0.5, adaptive=False)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE, config=cfg)
        res = eng.run(small_social, bfs_for(small_social))
        assert res.extra["static_ratio"] == 0.5
        avail = spec.memory_bytes - small_social.vertex_state_bytes
        assert res.extra["static_region_bytes"] * TEST_SCALE == pytest.approx(
            0.5 * avail, rel=0.05
        )

    def test_whole_dataset_fits_all_static(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=1.5)
        eng = AsceticEngine(spec=spec, data_scale=TEST_SCALE)
        res = eng.run(small_social, bfs_for(small_social))
        assert res.extra["static_ratio"] == 1.0
        # Nothing left to fetch per iteration: processing traffic is just
        # the one-time vertex-state upload.
        vertex_state_charged = small_social.vertex_state_bytes / TEST_SCALE
        assert res.processing_bytes_h2d <= 1.2 * vertex_state_charged


class TestOptimizations:
    def test_static_region_cuts_transfer(self, small_social):
        """vs Subway: the same computation moves fewer processing bytes."""
        spec = make_spec_for(small_social)
        prog = make_program("CC")
        sub = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(small_social, prog)
        asc = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        assert asc.processing_bytes_h2d < 0.8 * sub.processing_bytes_h2d

    def test_overlap_helps(self, small_social):
        spec = make_spec_for(small_social)
        base = AsceticConfig()
        t_seq = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE, config=base.with_(overlap=False)
        ).run(small_social, make_program("CC")).elapsed_seconds
        t_ovl = AsceticEngine(
            spec=spec, data_scale=TEST_SCALE, config=base.with_(overlap=True)
        ).run(small_social, make_program("CC")).elapsed_seconds
        assert t_ovl < t_seq

    def test_faster_than_subway(self, small_social):
        spec = make_spec_for(small_social)
        t_sub = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        ).elapsed_seconds
        t_asc = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        ).elapsed_seconds
        assert t_asc < t_sub

    def test_phase_timers_populated(self, small_social):
        spec = make_spec_for(small_social)
        res = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        ph = res.metrics.phase_seconds
        assert ph.get("Tsr", 0) > 0
        assert ph.get("Tfilling", 0) > 0
        assert ph.get("Ttransfer", 0) > 0
        assert ph.get("Tondemand", 0) > 0

    def test_replacement_swaps_bounded(self, small_social):
        """§5: the on-demand window only fits a small share of the data."""
        spec = make_spec_for(small_social)
        res = AsceticEngine(
            spec=spec,
            data_scale=TEST_SCALE,
            config=AsceticConfig(fill="front", replacement=True),
        ).run(small_social, make_program("PR", tol=1e-2))
        assert res.extra["swap_bytes"] < 0.25 * res.metrics.bytes_h2d

    def test_fill_policies_within_a_few_percent(self, small_social):
        """§5: front/rear/random initial fills perform alike (< ~10 %)."""
        spec = make_spec_for(small_social)
        times = {}
        for fill in ("front", "rear", "random"):
            times[fill] = AsceticEngine(
                spec=spec, data_scale=TEST_SCALE, config=AsceticConfig(fill=fill)
            ).run(small_social, make_program("PR", tol=1e-2)).elapsed_seconds
        spread = (max(times.values()) - min(times.values())) / min(times.values())
        assert spread < 0.15
