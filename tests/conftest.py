"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    grid_graph,
    path_graph,
    rmat_graph,
    social_graph,
    star_graph,
    web_graph,
)
from repro.gpusim.device import GPUSpec

# Keep property tests fast and CI-stable.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

#: Test-scale factor: geometry (pages/chunks) and charge scaling behave as
#: if graphs were 100× bigger.
TEST_SCALE = 1e-2


@pytest.fixture(scope="session")
def small_social() -> CSRGraph:
    """A ~40k-arc social-style graph (undirected, hub-skewed, shuffled-ish)."""
    return social_graph(1500, 20000, seed=42)


@pytest.fixture(scope="session")
def small_web() -> CSRGraph:
    """A ~30k-edge web-style graph (directed, id-local, deep)."""
    return web_graph(2500, 30000, seed=43)


@pytest.fixture(scope="session")
def small_rmat() -> CSRGraph:
    """A small RMAT graph with self-loops and parallel edges kept."""
    return rmat_graph(10, 12000, seed=44)


@pytest.fixture(scope="session")
def tiny_path() -> CSRGraph:
    return path_graph(12)


@pytest.fixture(scope="session")
def tiny_grid() -> CSRGraph:
    return grid_graph(6, 7)


@pytest.fixture(scope="session")
def tiny_star() -> CSRGraph:
    return star_graph(9)


@pytest.fixture()
def spec_oversubscribed(small_social) -> GPUSpec:
    """A device cap that forces out-of-memory processing on small_social."""
    # Vertex state must fit, the edge array must not.
    cap = small_social.vertex_state_bytes + small_social.edge_array_bytes // 3
    return GPUSpec(memory_bytes=cap)


def make_spec_for(graph: CSRGraph, edge_fraction: float = 0.4) -> GPUSpec:
    """A device whose free memory holds ``edge_fraction`` of the edge array."""
    cap = graph.vertex_state_bytes + int(graph.edge_array_bytes * edge_fraction)
    return GPUSpec(memory_bytes=max(cap, 4096))


def assert_graph_valid(g: CSRGraph) -> None:
    """Structural invariants every generated graph must satisfy."""
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.n_edges
    assert np.all(np.diff(g.indptr) >= 0)
    if g.n_edges:
        assert g.indices.min() >= 0
        assert g.indices.max() < g.n_vertices
