"""Tests for the Hybrid engine: hotness-driven migrate/gather/direct.

The engine's claim is twofold.  Correctness: it is a pure data-movement
policy, so results are bit-identical to every other engine and runs are
deterministic.  Performance (the Fig. 9/11-style claim): by choosing the
transfer path per chunk from measured hotness it strictly beats both the
gather-only (Subway) and region+gather (Ascetic) fixed policies on
memory-constrained cells.
"""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.engines.base import AccessPath
from repro.engines.hybrid import HybridEngine, HybridPolicy
from repro.graph.properties import best_source
from repro.harness.experiments import make_workload, run_workload

from conftest import TEST_SCALE, make_spec_for

SCALE = 5e-5


def _constrained_workload(abbr, algo, frac):
    """A cell whose device holds ``frac`` of the edge array (Fig. 11 style)."""
    base = make_workload(abbr, algo, scale=SCALE)
    g = base.graph
    cap = int(g.edge_array_bytes * frac) + g.vertex_state_bytes * 2
    return make_workload(abbr, algo, scale=SCALE,
                         memory_bytes=max(cap, 4096))


class TestConstruction:
    def test_defaults(self):
        eng = HybridEngine()
        assert eng.cache_fraction == 0.75
        assert eng.reuse_horizon == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridEngine(chunk_bytes=0)
        with pytest.raises(ValueError):
            HybridEngine(cache_fraction=0.99)
        with pytest.raises(ValueError):
            HybridEngine(cache_fraction=-0.1)
        with pytest.raises(ValueError):
            HybridEngine(reuse_horizon=0)


class TestCorrectness:
    def test_matches_reference_bfs(self, small_social):
        from repro.algorithms.validate import reference_bfs_levels

        src = best_source(small_social)
        eng = HybridEngine(spec=make_spec_for(small_social),
                           data_scale=TEST_SCALE)
        res = eng.run(small_social, make_program("BFS", source=src))
        assert np.array_equal(res.values,
                              reference_bfs_levels(small_social, src))

    def test_deterministic_across_runs(self):
        w = _constrained_workload("GS", "SSSP", 0.15)
        a = run_workload(w, "Hybrid")
        b = run_workload(w, "Hybrid")
        assert np.array_equal(a.values, b.values)
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.metrics.bytes_h2d == b.metrics.bytes_h2d
        assert a.metrics.bytes_direct == b.metrics.bytes_direct
        assert a.extra == b.extra


class TestWinCells:
    """Hybrid strictly beats BOTH fixed policies on constrained cells."""

    @pytest.mark.parametrize("abbr,algo,frac", [
        ("GS", "SSSP", 0.15),
        ("FK", "PR", 0.15),
        ("GS", "BFS", 0.05),
    ])
    def test_beats_ascetic_and_subway(self, abbr, algo, frac):
        w = _constrained_workload(abbr, algo, frac)
        hybrid = run_workload(w, "Hybrid")
        ascetic = run_workload(w, "Ascetic")
        subway = run_workload(w, "Subway")
        assert hybrid.elapsed_seconds < ascetic.elapsed_seconds
        assert hybrid.elapsed_seconds < subway.elapsed_seconds
        # Still the same answer as the engines it beats.
        assert np.array_equal(hybrid.values, ascetic.values)
        assert np.array_equal(hybrid.values, subway.values)


class TestPathUsage:
    def test_all_three_paths_exercised(self):
        # PR's dense early iterations gather, the hot working set migrates
        # into the cache, and the sparse convergence tail goes zero-copy.
        w = _constrained_workload("FK", "PR", 0.15)
        res = run_workload(w, "Hybrid")
        assert res.extra["migrate_bytes"] > 0
        assert res.extra["gather_bytes"] > 0
        assert res.extra["direct_bytes"] > 0
        assert res.metrics.bytes_direct > 0
        assert res.metrics.direct_accesses >= 0

    def test_decisions_visible_in_trace(self):
        w = _constrained_workload("FK", "PR", 0.15)
        res = run_workload(w, "Hybrid", record_events=True)
        markers = [e for e in res.event_log.events if e.kind == "access-path"]
        summaries = [m for m in markers if m.label == "Hybrid:chunk"]
        assert len(summaries) == res.iterations
        per_chunk = {m.label for m in markers} - {"Hybrid:chunk"}
        # A hybrid plan on this cell uses more than one non-resident path.
        assert len(per_chunk & {"migrate", "gather", "direct"}) >= 2

    def test_migration_fills_the_cache(self):
        w = _constrained_workload("FK", "PR", 0.15)
        res = run_workload(w, "Hybrid")
        assert res.extra["migrated_chunks"] > 0
        assert 0 < res.extra["resident_chunks"] <= res.extra["cache_chunks"]


class TestPolicyUnit:
    """HybridPolicy in isolation, with a hand-built region."""

    def _policy(self, small_web, reuse_horizon=8, region_chunk=4096):
        from repro.core.static_region import StaticRegion
        from repro.gpusim.device import GPUSpec

        region = StaticRegion(small_web, capacity_bytes=1 << 16,
                              fill="lazy", chunk_bytes=region_chunk)
        spec = GPUSpec(memory_bytes=1 << 20)
        return HybridPolicy(spec, region, chunk_bytes=16384,
                            reuse_horizon=reuse_horizon), region

    def test_resident_chunks_stay_resident(self, small_web):
        policy, region = self._policy(small_web)
        region.promote_vertices(np.ones(small_web.n_vertices, dtype=bool))
        ids = np.nonzero(region.resident)[0][:4]
        plan = policy.plan(0, ids)
        assert (plan == int(AccessPath.RESIDENT)).all()

    def test_sparse_one_touch_goes_direct(self, small_web):
        policy, _ = self._policy(small_web)
        # One candidate chunk, one touched vertex, tiny footprint, no
        # history: the fixed DMA/gather setups are unamortized, zero-copy
        # has none — the EMOGI regime.
        policy.bytes_per_touch = 256.0
        policy.migrate_budget = 100
        plan = policy.plan(0, np.array([0]), touch_counts=np.array([1]))
        assert plan[0] == int(AccessPath.DIRECT)

    def test_measured_reuse_flips_to_migrate(self, small_web):
        from repro.core.replacement import HotnessTable

        policy, region = self._policy(small_web)
        # Half-chunk footprint: direct access pays for most of the chunk at
        # half bandwidth anyway, so measured reuse amortizes the migration
        # and flips the single cold candidate from DIRECT to MIGRATE.
        policy.bytes_per_touch = 8192.0
        policy.migrate_budget = 100
        hot = HotnessTable(region.n_chunks, policy="cumulative")
        touch = np.zeros(region.n_chunks, dtype=np.int64)
        touch[0] = 1
        for _ in range(policy.reuse_horizon):
            hot.update(touch)
        cold = policy.plan(5, np.array([0]), touch_counts=np.array([1]))
        assert cold[0] == int(AccessPath.DIRECT)
        plan = policy.plan(5, np.array([0]), touch_counts=np.array([1]),
                           hotness=hot)
        assert plan[0] == int(AccessPath.MIGRATE)

    def test_dense_footprint_goes_gather(self, small_web):
        policy, region = self._policy(small_web, region_chunk=1024)
        # A wide round of quarter-chunk footprints: the gather setup
        # amortizes across the many candidates, needed bytes ship at bulk
        # bandwidth, and no chunk has reuse history worth a migration.
        policy.bytes_per_touch = 4096.0
        policy.migrate_budget = 0
        ids = np.arange(64)
        assert region.n_chunks > 64  # candidates stay in range
        plan = policy.plan(0, ids, touch_counts=np.ones(64))
        assert (plan == int(AccessPath.GATHER)).all()

    def test_migrate_budget_bounds_migration(self, small_web):
        from repro.core.replacement import HotnessTable

        policy, region = self._policy(small_web)
        policy.bytes_per_touch = 8192.0
        policy.migrate_budget = 2
        hot = HotnessTable(region.n_chunks, policy="cumulative")
        touch = np.zeros(region.n_chunks, dtype=np.int64)
        ids = np.arange(8)
        touch[ids] = 1
        for _ in range(policy.reuse_horizon):
            hot.update(touch)
        plan = policy.plan(9, ids, touch_counts=np.ones(8), hotness=hot)
        assert int((plan == int(AccessPath.MIGRATE)).sum()) == 2
        # Overflow candidates fall to a real fallback path, never RESIDENT.
        rest = plan[plan != int(AccessPath.MIGRATE)]
        assert set(np.unique(rest)) <= {int(AccessPath.GATHER),
                                        int(AccessPath.DIRECT)}


class TestWarmStart:
    def test_cache_carries_across_requests(self):
        # FK/PR migrates chunks (see TestPathUsage), so the second request
        # inherits a non-empty cache.
        w = _constrained_workload("FK", "PR", 0.15)
        eng = HybridEngine(spec=w.spec, data_scale=SCALE)
        cold = eng.run(w.graph, w.fresh_program())
        assert cold.extra["warm_start"] == 0.0
        assert cold.extra["resident_chunks"] > 0
        eng.reset_for_request(keep_static=True)
        warm = eng.run(w.graph, w.fresh_program())
        assert warm.extra["warm_start"] == 1.0
        assert warm.extra["static_warm_bytes"] > 0
        assert np.array_equal(cold.values, warm.values)

    def test_cold_reset_drops_the_cache(self):
        w = _constrained_workload("GS", "BFS", 0.15)
        eng = HybridEngine(spec=w.spec, data_scale=SCALE)
        eng.run(w.graph, w.fresh_program())
        eng.reset_for_request(keep_static=False)
        again = eng.run(w.graph, w.fresh_program())
        assert again.extra["warm_start"] == 0.0
