"""Tests for run-result serialization."""

import json

import pytest

from repro.algorithms import make_program
from repro.core.ascetic import AsceticEngine
from repro.harness.persistence import load_results, result_to_dict, save_results

from conftest import TEST_SCALE, make_spec_for


@pytest.fixture(scope="module")
def run(small_social):
    spec = make_spec_for(small_social)
    return AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
        small_social, make_program("CC")
    )


class TestResultToDict:
    def test_core_fields(self, run):
        d = result_to_dict(run)
        assert d["engine"] == "Ascetic"
        assert d["algorithm"] == "CC"
        assert d["iterations"] == run.iterations
        assert d["metrics"]["bytes_h2d"] == run.metrics.bytes_h2d
        assert "static_ratio" in d["extra"]
        assert "per_iteration" not in d

    def test_values_not_serialized(self, run):
        assert "values" not in result_to_dict(run)

    def test_iteration_detail_optional(self, run):
        d = result_to_dict(run, include_iterations=True)
        assert len(d["per_iteration"]) == run.iterations
        assert d["per_iteration"][0]["active_vertices"] > 0

    def test_json_safe(self, run):
        json.dumps(result_to_dict(run, include_iterations=True))


class TestRoundTrip:
    def test_save_and_load(self, run, tmp_path):
        p = tmp_path / "runs.json"
        save_results([run, run], p)
        loaded = load_results(p)
        assert len(loaded) == 2
        assert loaded[0]["elapsed_seconds"] == run.elapsed_seconds

    def test_load_rejects_non_list(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{}")
        with pytest.raises(ValueError):
            load_results(p)

    def test_load_rejects_unknown_schema(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('[{"schema": 99}]')
        with pytest.raises(ValueError):
            load_results(p)
