"""Load-test simulator: determinism, warm reuse, the acceptance comparison.

The acceptance test of the serving layer lives here: on an Ascetic engine
pool, a warm-affinity schedule shows *strictly* lower mean latency than
the same trace dispatched FIFO, and the Static Region counters prove the
win came from skipped fills rather than luck.
"""

import numpy as np
import pytest

from repro.core.ascetic import AsceticEngine
from repro.engines.base import Engine
from repro.gpusim.device import GPUSpec
from repro.gpusim.faults import CapacitySqueeze, FaultPlan
from repro.serve import (
    EnginePool,
    RequestStatus,
    ServeConfig,
    fold_slo,
    quick_config,
    report_digest,
    run_load_test,
)
from repro.serve.request import Request
from repro.serve.simulator import WorkloadCatalog

from conftest import make_spec_for

#: All simulator tests run at the CI-smoke dataset scale.
SCALE = 5e-5


def req(rid, algo, arrival, tenant="t0", graph="GS", deadline=None):
    return Request(request_id=rid, tenant=tenant, graph_id=graph,
                   algorithm=algo, arrival=arrival, deadline=deadline)


def base_config(**overrides):
    kw = dict(seed=0, engine="Ascetic", scale=SCALE, graphs=("GS",),
              algorithms=("BFS", "CC"), queue_capacity=16,
              queue_policy="reject", scheduler="affinity", max_engines=1)
    kw.update(overrides)
    return ServeConfig(**kw)


class TestEnginePool:
    class _Dummy(Engine):
        name = "dummy"

        def __init__(self):
            self.resets = []

        def reset_for_request(self, keep_static=False):
            self.resets.append(keep_static)

        def _prepare(self, gpu, graph, program):  # pragma: no cover
            pass

        def _iteration(self, gpu, graph, program, state):  # pragma: no cover
            pass

    def test_hit_miss_eviction_accounting(self):
        pool = EnginePool(max_engines=2)
        a, warm = pool.acquire("A", self._Dummy)
        assert not warm and pool.stats.misses == 1
        a2, warm = pool.acquire("A", self._Dummy)
        assert warm and a2 is a and a.resets == [True]
        pool.acquire("B", self._Dummy)
        pool.acquire("C", self._Dummy)  # evicts A (LRU)
        assert pool.stats.evictions == 1
        assert pool.warm_keys() == ("B", "C")
        _, warm = pool.acquire("A", self._Dummy)
        assert not warm  # A was evicted: cold again
        with pytest.raises(ValueError):
            EnginePool(max_engines=0)


class TestWarmEngine:
    def test_warm_rerun_skips_the_fill(self, small_web):
        engine = AsceticEngine(spec=make_spec_for(small_web), data_scale=1e-2)
        cold = engine.run(small_web, _bfs())
        assert cold.extra["warm_start"] == 0.0
        assert cold.metrics.phase_seconds["Tprefill"] > 0.0
        engine.reset_for_request(keep_static=True)
        warm = engine.run(small_web, _bfs())
        assert warm.extra["warm_start"] == 1.0
        assert warm.extra["static_warm_bytes"] > 0
        assert warm.extra["static_refill_bytes"] == 0.0
        # Identical answer, and the fill phase vanished: warm residency
        # stayed on the device, so the run paid no prefill transfer at all.
        assert np.array_equal(cold.values, warm.values)
        assert warm.metrics.phase_seconds["Tprefill"] == 0.0

    def test_reset_without_keep_static_stays_cold(self, small_web):
        engine = AsceticEngine(spec=make_spec_for(small_web), data_scale=1e-2)
        engine.run(small_web, _bfs())
        engine.reset_for_request(keep_static=False)
        again = engine.run(small_web, _bfs())
        assert again.extra["warm_start"] == 0.0

    def test_warm_region_invalid_for_a_different_graph(self, small_web,
                                                       small_social):
        engine = AsceticEngine(spec=make_spec_for(small_web), data_scale=1e-2)
        engine.run(small_web, _bfs())
        engine.reset_for_request(keep_static=True)
        other = engine.run(small_social, _bfs())
        assert other.extra["warm_start"] == 0.0

    def test_warm_hit_after_capacity_squeeze_refills_only_the_gap(
            self, small_web):
        # A mid-run squeeze shrinks the Static Region; the warm rerun keeps
        # the surviving residency and tops up only what the squeeze dropped
        # — charged as a real (smaller) prefill transfer.
        plan = FaultPlan(squeezes=(
            CapacitySqueeze(start_iteration=1, fraction=0.2),))
        engine = AsceticEngine(spec=make_spec_for(small_web), data_scale=1e-2,
                               fault_plan=plan, seed=3)
        engine.run(small_web, _bfs())
        engine.reset_for_request(keep_static=True)
        warm = engine.run(small_web, _bfs())
        assert warm.extra["warm_start"] == 1.0
        assert warm.extra["static_warm_bytes"] > 0     # residency survived
        assert warm.extra["static_refill_bytes"] > 0   # the gap was refilled
        # Refill is strictly less than a cold fill would have been.
        assert (warm.extra["static_refill_bytes"]
                < warm.extra["static_warm_bytes"]
                + warm.extra["static_refill_bytes"])


def _bfs():
    from repro.algorithms import make_program

    return make_program("BFS", source=7)


class TestDeterminism:
    def test_load_test_is_bit_identical_across_runs(self):
        cfg = base_config(n_requests=6, arrival_rate=1.0, deadline=30.0,
                          queue_policy="deadline", max_batch=2,
                          batch_wait=0.1, multi_source=2,
                          algorithms=("BFS", "CC", "SSSP"), max_engines=2)
        a = run_load_test(cfg)
        b = run_load_test(cfg)
        assert a.run_digest() == b.run_digest()
        assert a.trace_payload() == b.trace_payload()
        assert report_digest(a.report) == report_digest(b.report)
        assert a.pool_stats.as_dict() == b.pool_stats.as_dict()

    def test_different_seed_different_trace(self):
        a = run_load_test(base_config(n_requests=5, seed=1))
        b = run_load_test(base_config(n_requests=5, seed=2))
        assert a.run_digest() != b.run_digest()


class TestAcceptance:
    """Affinity beats FIFO on latency, and the counters prove why."""

    @pytest.fixture(scope="class")
    def trace(self):
        # Alternating affinity keys (BFS → plain CSR, SSSP → weighted),
        # back-to-back arrivals so dispatch order is the scheduler's call.
        return tuple(
            req(i, "BFS" if i % 2 == 0 else "SSSP", arrival=0.01 * i)
            for i in range(8)
        )

    @pytest.fixture(scope="class")
    def results(self, trace):
        # max_engines=1: FIFO's alternation evicts the pooled engine every
        # dispatch; affinity groups per key and chains warm hits.  The huge
        # aging window lets affinity reorder freely.
        common = dict(n_requests=len(trace), max_engines=1,
                      aging_seconds=1e9)
        fifo = run_load_test(base_config(scheduler="fifo", **common), trace)
        aff = run_load_test(base_config(scheduler="affinity", **common), trace)
        return fifo, aff

    def test_everything_completes(self, results):
        for res in results:
            assert all(r.status is RequestStatus.COMPLETED
                       for r in res.responses)

    def test_affinity_strictly_lowers_mean_latency(self, results):
        fifo, aff = results
        mean = lambda res: np.mean([r.e2e_seconds for r in res.responses])
        assert mean(aff) < mean(fifo)
        assert (aff.report["latency_seconds"]["e2e"]["mean"]
                < fifo.report["latency_seconds"]["e2e"]["mean"])

    def test_counters_prove_fills_were_skipped(self, results):
        fifo, aff = results
        # FIFO ping-pongs between keys: the single pool slot never helps.
        assert fifo.pool_stats.hits == 0
        assert fifo.pool_stats.warm_runs == 0
        assert fifo.pool_stats.skipped_fill_bytes == 0.0
        assert fifo.pool_stats.misses == 8
        # Affinity chains each key: one cold run per key, the rest warm.
        assert aff.pool_stats.misses == 2
        assert aff.pool_stats.hits == 6
        assert aff.pool_stats.warm_runs == 6
        assert aff.pool_stats.skipped_fill_bytes > 0.0
        assert aff.report["warm"]["hits"] == 6

    def test_same_answers_either_way(self, results):
        fifo, aff = results
        # Scheduling policy must not change any request's computed values.
        assert len(fifo.run_results) == len(aff.run_results) == 8


class TestEdgeCases:
    def test_request_after_drain_starts_immediately(self):
        trace = (req(0, "BFS", arrival=0.0),
                 req(1, "BFS", arrival=1e6))
        res = run_load_test(base_config(n_requests=2), trace)
        late = res.responses[1]
        assert late.completed
        assert late.start_time == pytest.approx(1e6)
        assert late.queue_seconds == pytest.approx(0.0)
        # And the pool still serves it warm: same key as request 0.
        assert late.warm

    def test_deadline_expired_at_admission_is_shed(self):
        trace = (req(0, "BFS", arrival=2.0, deadline=2.0),)
        res = run_load_test(base_config(n_requests=1), trace)
        resp = res.responses[0]
        assert resp.status is RequestStatus.SHED
        assert resp.shed_reason == "deadline-at-admission"
        assert res.report["counts"]["shed"] == 1
        assert res.report["counts"]["completed"] == 0

    def test_zero_capacity_queue_sheds_all_load(self):
        trace = tuple(req(i, "BFS", arrival=0.1 * i) for i in range(4))
        res = run_load_test(base_config(n_requests=4, queue_capacity=0), trace)
        assert all(r.status is RequestStatus.SHED for r in res.responses)
        assert res.report["counts"]["completed"] == 0
        assert res.report["shed_rate"] == pytest.approx(1.0)
        assert res.report["throughput_per_second"] == 0.0

    def test_deadline_expiry_in_queue(self):
        # Request 1's deadline passes while request 0 occupies the server.
        trace = (req(0, "BFS", arrival=0.0),
                 req(1, "BFS", arrival=0.1, deadline=0.2))
        res = run_load_test(base_config(n_requests=2,
                                        queue_policy="deadline"), trace)
        assert res.responses[0].completed
        assert res.responses[1].status is RequestStatus.SHED
        assert res.responses[1].shed_reason == "deadline-in-queue"


class TestSLOReport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_load_test(base_config(
            n_requests=6, arrival_rate=1.0, deadline=60.0, max_engines=2))

    def test_schema_and_counts_balance(self, result):
        rep = result.report
        assert rep["schema"] == "repro.serve/1"
        c = rep["counts"]
        assert c["arrived"] == 6
        assert c["completed"] + c["shed"] == c["arrived"]
        assert c["deadline_met"] <= c["completed"]

    def test_percentiles_are_ordered(self, result):
        for split in ("queue", "service", "e2e"):
            lat = result.report["latency_seconds"][split]
            assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

    def test_tenant_sections_match_ledger(self, result):
        tenants = result.report["tenants"]
        assert sorted(tenants) == list(tenants)  # deterministic order
        total = sum(t["arrived"] for t in tenants.values())
        assert total == result.report["counts"]["arrived"]

    def test_fold_is_pure(self, result):
        again = fold_slo(result.events, horizon=result.horizon)
        assert again == result.report


class TestCatalog:
    def test_variants_are_shared_by_identity(self):
        cat = WorkloadCatalog(SCALE)
        assert cat.graph("GS", "plain") is cat.graph("GS", "plain")
        assert cat.graph("GS", "weighted") is cat.graph("GS", "weighted")
        assert cat.graph("GS", "weighted") is not cat.graph("GS", "plain")
        with pytest.raises(ValueError):
            cat.graph("GS", "transposed")

    def test_sources_fold_into_vertex_range(self):
        cat = WorkloadCatalog(SCALE)
        g = cat.graph("GS", "plain")
        r = Request(request_id=0, tenant="t", graph_id="GS", algorithm="BFS",
                    arrival=0.0, sources=(g.n_vertices + 3, 1))
        assert cat.resolve_sources(r, g) == (3, 1)
        # No explicit sources: the engine-style hub pick, in range.
        hub = cat.resolve_sources(req(1, "BFS", 0.0), g)
        assert len(hub) == 1 and 0 <= hub[0] < g.n_vertices

    def test_program_for_picks_fused_vs_plain(self):
        cat = WorkloadCatalog(SCALE)
        g = cat.graph("GS", "plain")
        single = (req(0, "BFS", 0.0),)
        assert cat.program_for(single, g).name == "BFS"
        batch = (req(0, "BFS", 0.0), req(1, "BFS", 0.1))
        assert cat.program_for(batch, g).name == "BFSx2"


class TestQuickConfig:
    def test_quick_config_is_seed_parameterized(self):
        assert quick_config(0) == quick_config(0)
        assert quick_config(1).seed == 1


class TestCLIRegistryChoices:
    def test_serve_engine_choices_come_from_the_registry(self):
        from repro.cli import build_parser
        from repro.engines import registry

        parser = build_parser()
        args = parser.parse_args(["serve", "--quick"])
        assert args.command == "serve"
        # The --engine option's choices track the live registry, so a
        # third-party engine registered at runtime is servable untouched.
        serve_parser = next(
            a for a in parser._subparsers._group_actions[0].choices.values()
            if any(act.dest == "engine" and act.choices
                   for act in a._actions)
            and a.prog.endswith("serve"))
        engine_action = next(act for act in serve_parser._actions
                             if act.dest == "engine")
        assert list(engine_action.choices) == sorted(registry.available())
