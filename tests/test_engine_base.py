"""Engine.run edge cases: zero-iteration runs, record labelling."""

import pytest

from repro.algorithms import make_program
from repro.engines.subway import SubwayEngine
from repro.core.ascetic import AsceticEngine
from repro.graph.generators import social_graph
from repro.gpusim.device import GPUSpec


@pytest.fixture(scope="module")
def graph():
    return social_graph(300, 3000, seed=5)


@pytest.mark.parametrize("engine_cls", [SubwayEngine, AsceticEngine])
class TestZeroIteration:
    def test_capped_at_zero_emits_no_records(self, engine_cls, graph):
        engine = engine_cls(spec=GPUSpec(memory_bytes=1 << 20), max_iterations=0)
        res = engine.run(graph, make_program("BFS", source=0))
        assert res.iterations == 0
        assert res.per_iteration == []
        assert res.elapsed_seconds >= 0
        assert 0.0 <= res.gpu_idle_fraction <= 1.0

    def test_negative_cap_treated_as_zero(self, engine_cls, graph):
        engine = engine_cls(spec=GPUSpec(memory_bytes=1 << 20), max_iterations=-3)
        res = engine.run(graph, make_program("BFS", source=0))
        assert res.iterations == 0
        assert res.per_iteration == []


def test_records_labelled_with_pre_step_index(graph):
    engine = SubwayEngine(spec=GPUSpec(memory_bytes=1 << 20))
    res = engine.run(graph, make_program("BFS", source=0))
    assert [r.iteration for r in res.per_iteration] == list(range(res.iterations))
    assert all(r.t_end >= r.t_start for r in res.per_iteration)
