"""Tests for edge-array partitioning (the PT substrate)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph, star_graph
from repro.graph.partition import (
    partition_by_bytes,
    partition_by_vertex_ranges,
    partitions_of_vertices,
)


def check_cover(graph, parts):
    """Partitions must tile the edge array exactly, in order."""
    assert parts[0].e_lo == 0
    assert parts[-1].e_hi == graph.n_edges
    for a, b in zip(parts, parts[1:]):
        assert a.e_hi == b.e_lo
    assert [p.pid for p in parts] == list(range(len(parts)))


class TestPartitionByBytes:
    def test_single_partition_when_fits(self, small_rmat):
        parts = partition_by_bytes(small_rmat, small_rmat.edge_array_bytes + 100)
        assert len(parts) == 1
        check_cover(small_rmat, parts)

    def test_budget_respected(self, small_rmat):
        budget = small_rmat.edge_array_bytes // 7
        parts = partition_by_bytes(small_rmat, budget)
        check_cover(small_rmat, parts)
        for p in parts:
            assert p.nbytes <= budget

    def test_vertex_alignment(self, small_rmat):
        budget = small_rmat.edge_array_bytes // 5
        parts = partition_by_bytes(small_rmat, budget)
        boundaries = {int(x) for x in small_rmat.indptr}
        for p in parts:
            # Boundaries land on vertex starts unless a mega-vertex split.
            if p.v_hi - p.v_lo > 1:
                assert p.e_lo in boundaries and p.e_hi in boundaries

    def test_mega_vertex_split(self):
        g = star_graph(1000)  # vertex 0 owns 999 edges
        budget = 100 * g.bytes_per_edge
        parts = partition_by_bytes(g, budget)
        check_cover(g, parts)
        assert all(p.nbytes <= budget for p in parts)
        assert len([p for p in parts if p.n_edges > 0]) == 10

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], [], 3)
        parts = partition_by_bytes(g, 1024)
        assert len(parts) == 1
        assert parts[0].n_edges == 0

    def test_invalid_budget(self, tiny_path):
        with pytest.raises(ValueError):
            partition_by_bytes(tiny_path, 0)

    @given(st.integers(1, 50))
    def test_property_cover_any_budget(self, budget_edges):
        g = rmat_graph(7, 900, seed=11, directed=True)
        parts = partition_by_bytes(g, budget_edges * g.bytes_per_edge)
        check_cover(g, parts)
        for p in parts:
            assert p.n_edges <= max(budget_edges, 1)


class TestPartitionByVertexRanges:
    def test_equal_edges(self, small_rmat):
        parts = partition_by_vertex_ranges(small_rmat, 4)
        check_cover(small_rmat, parts)
        sizes = [p.n_edges for p in parts]
        assert max(sizes) - min(sizes) <= small_rmat.n_edges // 4 + 1

    def test_one_part(self, small_rmat):
        parts = partition_by_vertex_ranges(small_rmat, 1)
        assert len(parts) == 1
        check_cover(small_rmat, parts)

    def test_invalid(self, tiny_path):
        with pytest.raises(ValueError):
            partition_by_vertex_ranges(tiny_path, 0)

    def test_mega_vertex_splits_mid_edge_list(self):
        # Regression: a hub whose edge list exceeds the per-part slice
        # must be split across parts with no edge dropped or duplicated
        # (the bounds are edge indices, not vertex boundaries).
        hub = star_graph(40)  # vertex 0 owns ~all edges
        parts = partition_by_vertex_ranges(hub, 4)
        check_cover(hub, parts)
        sizes = [p.n_edges for p in parts]
        assert max(sizes) - min(sizes) <= 1
        # The hub's edges land in more than one part.
        holders = [p for p in parts
                   if p.e_lo < hub.out_degree()[0] and p.e_hi > 0]
        assert len(holders) > 1

    @given(st.integers(1, 16), st.integers(0, 6))
    def test_property_cover_any_count(self, n_parts, seed):
        graph = rmat_graph(6, 400 + 97 * seed, seed=seed)
        parts = partition_by_vertex_ranges(graph, n_parts)
        assert len(parts) == n_parts
        check_cover(graph, parts)


class TestPartitionsOfVertices:
    def _brute(self, graph, parts, active):
        touched = np.zeros(len(parts), dtype=bool)
        for v in np.nonzero(active)[0]:
            lo, hi = graph.edge_range(v, v + 1)
            if hi == lo:
                continue  # degree-0 vertex owns no edge bytes
            for i, p in enumerate(parts):
                if lo < p.e_hi and hi > p.e_lo:
                    touched[i] = True
        return touched

    def test_no_active(self, small_rmat):
        parts = partition_by_bytes(small_rmat, small_rmat.edge_array_bytes // 4)
        active = np.zeros(small_rmat.n_vertices, dtype=bool)
        assert not partitions_of_vertices(small_rmat, parts, active).any()

    def test_all_active_touches_all(self, small_rmat):
        parts = partition_by_bytes(small_rmat, small_rmat.edge_array_bytes // 4)
        active = np.ones(small_rmat.n_vertices, dtype=bool)
        assert partitions_of_vertices(small_rmat, parts, active).all()

    def test_zero_degree_vertex_touches_nothing(self):
        g = CSRGraph.from_edges([0], [1], 3)
        parts = partition_by_bytes(g, 1024)
        active = np.zeros(3, dtype=bool)
        active[2] = True  # isolated vertex
        assert not partitions_of_vertices(g, parts, active).any()

    @given(st.integers(0, 2**30 - 1), st.integers(2, 12))
    def test_property_matches_bruteforce(self, mask_bits, n_parts):
        g = rmat_graph(5, 300, seed=9, directed=True)
        parts = partition_by_vertex_ranges(g, n_parts)
        active = np.array(
            [(mask_bits >> (i % 30)) & 1 for i in range(g.n_vertices)], dtype=bool
        )
        got = partitions_of_vertices(g, parts, active)
        expect = self._brute(g, parts, active)
        assert np.array_equal(got, expect)
