"""Fault-plan/injector unit tests + cost-model property tests.

Covers the chaos-mode substrate in isolation: plan validation and
canonical serialization, the injector's determinism contract (same
``(seed, plan)`` ⇒ same draw sequence; independent fault classes do not
perturb each other's streams), and hypothesis properties of the PCIe
cost model the retry logic builds on.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.device import GPUSpec, SimulatedGPU
from repro.gpusim.faults import (
    CapacitySqueeze,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    standard_plan,
)
from repro.gpusim.pcie import PCIeLink


class TestPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(transfer_fail_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(transfer_corrupt_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(transfer_fail_rate=0.6, transfer_corrupt_rate=0.5)

    def test_degradation_window_validation(self):
        with pytest.raises(ValueError):
            LinkDegradation(start=0.5, end=0.5, factor=0.5)
        with pytest.raises(ValueError):
            LinkDegradation(start=0.0, end=1.0, factor=0.0)
        with pytest.raises(ValueError):
            LinkDegradation(start=0.0, end=1.0, factor=1.5)

    def test_squeeze_validation(self):
        with pytest.raises(ValueError):
            CapacitySqueeze(start_iteration=-1)
        with pytest.raises(ValueError):
            CapacitySqueeze(start_iteration=2, end_iteration=2)
        with pytest.raises(ValueError):
            CapacitySqueeze(start_iteration=0, fraction=1.0)
        sq = CapacitySqueeze(start_iteration=0, nbytes=100, fraction=0.5)
        assert sq.resolve(1000) == 500
        assert sq.resolve(100) == 100

    def test_null_plan_detection(self):
        assert FaultPlan().is_null
        assert not FaultPlan(transfer_fail_rate=0.1).is_null
        assert not FaultPlan(alloc_failures=("x",)).is_null
        assert not standard_plan().is_null

    def test_backoff_is_exponential(self):
        plan = FaultPlan(backoff_base=1e-4, backoff_factor=2.0)
        assert plan.backoff_seconds(0) == 1e-4
        assert plan.backoff_seconds(3) == 1e-4 * 8
        with pytest.raises(ValueError):
            plan.backoff_seconds(-1)


class TestPlanSerialization:
    def test_round_trip(self):
        plan = standard_plan()
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.fingerprint() == plan.fingerprint()

    def test_unknown_keys_raise(self):
        data = standard_plan().to_dict()
        data["not_a_field"] = 1
        with pytest.raises(ValueError, match="unknown FaultPlan"):
            FaultPlan.from_dict(data)

    def test_fingerprint_tracks_content(self):
        base = FaultPlan(transfer_fail_rate=0.1)
        assert base.fingerprint() == FaultPlan(transfer_fail_rate=0.1).fingerprint()
        assert base.fingerprint() != base.with_(transfer_fail_rate=0.2).fingerprint()

    def test_with_replaces_fields(self):
        plan = standard_plan().with_(transfer_fail_rate=0.0,
                                     transfer_corrupt_rate=0.0)
        assert not plan.affects_transfers
        assert plan.affects_kernels  # untouched fields survive


class TestInjectorDeterminism:
    def test_same_seed_same_draws(self):
        plan = standard_plan()
        a = FaultInjector(plan, seed=42)
        b = FaultInjector(plan, seed=42)
        assert [a.transfer_outcome() for _ in range(200)] == [
            b.transfer_outcome() for _ in range(200)
        ]
        assert [a.kernel_outcome() for _ in range(200)] == [
            b.kernel_outcome() for _ in range(200)
        ]

    def test_different_seed_diverges(self):
        plan = FaultPlan(transfer_fail_rate=0.4)
        inj_a = FaultInjector(plan, seed=1)
        inj_b = FaultInjector(plan, seed=2)
        a = [inj_a.transfer_outcome() for _ in range(256)]
        b = [inj_b.transfer_outcome() for _ in range(256)]
        assert a != b

    def test_zero_rate_classes_skip_draws(self):
        """Adding transfer faults must not shift the kernel stream."""
        kernels_only = FaultPlan(kernel_abort_rate=0.2, kernel_slowdown_rate=0.2)
        inj = FaultInjector(kernels_only, seed=9)
        # transfer_outcome with no transfer rates consumes no randomness...
        for _ in range(50):
            assert inj.transfer_outcome() == "ok"
        fresh = FaultInjector(kernels_only, seed=9)
        # ...so the kernel stream is exactly what a fresh injector draws.
        assert [inj.kernel_outcome() for _ in range(50)] == [
            fresh.kernel_outcome() for _ in range(50)
        ]

    def test_alloc_failure_budget(self):
        plan = FaultPlan(alloc_failures=("buf", "buf", "other"))
        inj = FaultInjector(plan, seed=0)
        assert inj.alloc_should_fail("buf")
        assert inj.alloc_should_fail("buf")
        assert not inj.alloc_should_fail("buf")  # budget of 2 spent
        assert inj.alloc_should_fail("other")
        assert not inj.alloc_should_fail("unlisted")
        assert inj.counts["alloc_fail"] == 3

    def test_link_state_min_factor_and_fresh_windows(self):
        plan = FaultPlan(degradations=(
            LinkDegradation(start=0.0, end=1.0, factor=0.5),
            LinkDegradation(start=0.5, end=2.0, factor=0.25),
        ))
        inj = FaultInjector(plan, seed=0)
        factor, fresh = inj.link_state(0.1)
        assert factor == 0.5 and len(fresh) == 1
        factor, fresh = inj.link_state(0.6)  # both overlap: min wins
        assert factor == 0.25 and len(fresh) == 1  # only the new window
        factor, fresh = inj.link_state(0.7)
        assert factor == 0.25 and fresh == []  # both already noted
        factor, fresh = inj.link_state(5.0)
        assert factor == 1.0 and fresh == []
        assert inj.counts["degradation_windows"] == 2


class TestTransferCostProperties:
    """Property tests of the cost model the retry logic charges against."""

    @given(a=st.integers(min_value=0, max_value=1 << 32),
           b=st.integers(min_value=0, max_value=1 << 32))
    def test_transfer_seconds_monotonic_in_nbytes(self, a, b):
        link = PCIeLink()
        lo, hi = sorted((a, b))
        assert link.transfer_seconds(lo) <= link.transfer_seconds(hi)

    @given(a=st.integers(min_value=0, max_value=1 << 32),
           b=st.integers(min_value=0, max_value=1 << 32))
    def test_streaming_seconds_monotonic_in_nbytes(self, a, b):
        link = PCIeLink()
        lo, hi = sorted((a, b))
        assert link.streaming_seconds(lo) <= link.streaming_seconds(hi)

    @given(n=st.integers(min_value=1, max_value=1 << 32))
    def test_streaming_never_slower_than_latency_per_transfer(self, n):
        link = PCIeLink()
        assert link.streaming_seconds(n) <= link.transfer_seconds(n)


class TestBackoffDeterminism:
    """Same-seed device runs produce identical fault/backoff timelines."""

    def _faulty_timeline(self, seed):
        plan = FaultPlan(transfer_fail_rate=0.3, max_retries=8)
        gpu = SimulatedGPU(GPUSpec(), record_events=True,
                           faults=FaultInjector(plan, seed=seed))
        for i in range(40):
            gpu.h2d(1 << 20, label=f"t{i}")
        gpu.sync()
        return [(e.kind, e.label, e.start, e.end) for e in gpu.events.events]

    def test_same_seed_identical_backoff_schedule(self):
        first = self._faulty_timeline(7)
        second = self._faulty_timeline(7)
        assert first == second
        assert any(kind == "backoff" for kind, *_ in first)
        assert any(kind == "h2d-fault" for kind, *_ in first)

    def test_different_seed_different_schedule(self):
        assert self._faulty_timeline(7) != self._faulty_timeline(8)
