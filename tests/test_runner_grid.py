"""Tests for the grid executor: parallelism, caching, fault isolation."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.engines import registry
from repro.engines.subway import SubwayEngine
from repro.gpusim.faults import standard_plan
from repro.runner import ResultCache, RunSpec, grid_specs, run_grid

SCALE = 5e-5


def _result_fingerprint(result):
    """Everything that must be bit-identical between serial and parallel."""
    return (
        result.engine,
        result.algorithm,
        result.graph_name,
        result.values.tobytes(),
        str(result.values.dtype),
        result.iterations,
        result.elapsed_seconds,
        result.gpu_idle_fraction,
        tuple(sorted(result.metrics.as_dict().items())),
        tuple(sorted(result.extra.items())),
        tuple(tuple(sorted(r.__dict__.items())) for r in result.per_iteration),
    )


class _ExplodingEngine:
    """Raises on every run — the injected worker exception."""

    def __init__(self, **kwargs):
        pass

    def run(self, graph, program):
        raise RuntimeError("injected failure")


class _CrashingEngine:
    """Kills its process outright — the hard worker crash."""

    def __init__(self, **kwargs):
        pass

    def run(self, graph, program):
        os._exit(7)


class _SleepingEngine:
    """Never finishes inside any reasonable budget."""

    def __init__(self, **kwargs):
        pass

    def run(self, graph, program):
        time.sleep(60)


class _CrashAt3Engine(SubwayEngine):
    """Dies at iteration 3 of every from-scratch run; survives a resume."""

    name = "CrashAt3"

    def _iteration(self, gpu, graph, program, state):
        if self.resumed_iteration is None and state.iteration == 3:
            raise RuntimeError("simulated mid-run crash")
        super()._iteration(gpu, graph, program, state)


@pytest.fixture
def fault_engines():
    registry.register("Exploding", _ExplodingEngine)
    registry.register("Crashing", _CrashingEngine)
    registry.register("Sleeping", _SleepingEngine)
    yield
    registry.unregister("Exploding")
    registry.unregister("Crashing")
    registry.unregister("Sleeping")


@pytest.fixture
def crash_at_3_engine():
    registry.register("CrashAt3", _CrashAt3Engine)
    yield
    registry.unregister("CrashAt3")


class TestEquivalence:
    def test_parallel_matches_serial_bitwise(self):
        specs = grid_specs(["GS", "FK"], ["BFS", "CC"], ["Subway", "Ascetic"], scale=SCALE)
        serial = run_grid(specs, jobs=1)
        parallel = run_grid(specs, jobs=4)
        assert serial.n_failed == parallel.n_failed == 0
        for s_cell, p_cell in zip(serial.cells, parallel.cells):
            assert s_cell.spec == p_cell.spec
            assert _result_fingerprint(s_cell.result) == _result_fingerprint(p_cell.result)

    def test_cached_replay_matches_computed(self, tmp_path):
        spec = RunSpec("FK", "BFS", "Ascetic", scale=SCALE)
        first = run_grid([spec], jobs=1, cache=tmp_path)
        second = run_grid([spec], jobs=1, cache=tmp_path)
        assert first.cells[0].status == "ok"
        assert second.cells[0].status == "cached"
        assert _result_fingerprint(first.cells[0].result) == _result_fingerprint(
            second.cells[0].result
        )


class TestCaching:
    def test_warm_cache_reruns_zero_cells(self, tmp_path):
        specs = grid_specs(["GS", "FK"], ["BFS"], ["Subway", "Ascetic"], scale=SCALE)
        cold = run_grid(specs, jobs=2, cache=tmp_path)
        assert cold.cache.misses == len(specs)
        assert cold.cache.stores == len(specs)
        warm = run_grid(specs, jobs=2, cache=tmp_path)
        assert warm.n_cached == len(specs)
        assert warm.n_ok == 0
        assert warm.cache.hits == len(specs)

    def test_cache_accepts_path_and_cache_object(self, tmp_path):
        spec = RunSpec("FK", "BFS", "Subway", scale=SCALE)
        run_grid([spec], cache=str(tmp_path))
        report = run_grid([spec], cache=ResultCache(tmp_path))
        assert report.cells[0].status == "cached"

    def test_duplicate_specs_computed_once(self):
        spec = RunSpec("FK", "BFS", "Subway", scale=SCALE)
        report = run_grid([spec, spec], jobs=1)
        assert len(report.cells) == 2
        assert all(c.ok for c in report.cells)
        assert report.cells[0].result is report.cells[1].result

    def test_no_cache_means_no_stats(self):
        report = run_grid([RunSpec("FK", "BFS", "Subway", scale=SCALE)])
        assert report.cache is None


class TestFaultIsolation:
    def test_exception_degrades_cell_only(self, fault_engines):
        specs = [
            RunSpec("FK", "BFS", "Exploding", scale=SCALE),
            RunSpec("FK", "BFS", "Subway", scale=SCALE),
        ]
        report = run_grid(specs, jobs=2, retries=1)
        bad, good = report.cells
        assert bad.status == "failed"
        assert "injected failure" in bad.error
        assert bad.attempts == 2  # first try + one retry
        assert good.status == "ok"
        assert good.result is not None

    def test_hard_crash_degrades_cell_only(self, fault_engines):
        specs = [
            RunSpec("FK", "BFS", "Crashing", scale=SCALE),
            RunSpec("FK", "BFS", "Subway", scale=SCALE),
        ]
        report = run_grid(specs, jobs=2, retries=1)
        bad, good = report.cells
        assert bad.status == "failed"
        assert "worker crashed" in bad.error
        assert bad.attempts == 2
        assert good.status == "ok"

    def test_serial_exception_degrades_cell_only(self, fault_engines):
        specs = [
            RunSpec("FK", "BFS", "Exploding", scale=SCALE),
            RunSpec("FK", "BFS", "Subway", scale=SCALE),
        ]
        report = run_grid(specs, jobs=1, retries=0)
        assert report.cells[0].status == "failed"
        assert report.cells[0].attempts == 1
        assert report.cells[1].status == "ok"

    def test_timeout_enforced_in_worker(self, fault_engines):
        report = run_grid(
            [RunSpec("FK", "BFS", "Sleeping", scale=SCALE)],
            jobs=2,
            timeout=0.5,
            retries=0,
        )
        cell = report.cells[0]
        assert cell.status == "failed"
        assert "time" in cell.error.lower()

    def test_timeout_enforced_serially(self, fault_engines):
        report = run_grid(
            [RunSpec("FK", "BFS", "Sleeping", scale=SCALE)],
            jobs=1,
            timeout=0.5,
            retries=0,
        )
        assert report.cells[0].status == "failed"
        assert "time budget" in report.cells[0].error

    def test_failed_cells_never_cached(self, fault_engines, tmp_path):
        spec = RunSpec("FK", "BFS", "Exploding", scale=SCALE)
        run_grid([spec], jobs=1, retries=0, cache=tmp_path)
        report = run_grid([spec], jobs=1, retries=0, cache=tmp_path)
        assert report.cells[0].status == "failed"
        assert report.cache.hits == 0


class TestEdgeCases:
    """``retries=0`` / ``timeout=None`` are explicit, documented contracts."""

    def test_retries_zero_is_one_attempt_parallel(self, fault_engines):
        report = run_grid(
            [RunSpec("FK", "BFS", "Exploding", scale=SCALE)], jobs=2, retries=0
        )
        assert report.cells[0].status == "failed"
        assert report.cells[0].attempts == 1

    def test_timeout_none_installs_no_timer(self):
        # With no budget to enforce, run_grid must leave the signal
        # plumbing completely untouched.
        sentinel = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGALRM, sentinel)
        try:
            report = run_grid(
                [RunSpec("GS", "BFS", "Subway", scale=SCALE)], jobs=1,
                timeout=None,
            )
            assert report.cells[0].status == "ok"
            assert signal.getsignal(signal.SIGALRM) is sentinel
            assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        finally:
            signal.signal(signal.SIGALRM, previous)

    def test_sigalrm_detection_off_main_thread(self):
        from repro.runner.executor import _can_use_sigalrm

        assert _can_use_sigalrm()  # pytest runs tests on the main thread
        seen = {}
        t = threading.Thread(
            target=lambda: seen.setdefault("value", _can_use_sigalrm())
        )
        t.start()
        t.join()
        assert seen["value"] is False

    def test_inline_timeout_falls_back_off_main_thread(self):
        # Off the main thread no alarm can be armed: the documented
        # fallback is to run the cell to completion, not to fail.
        box = {}

        def work():
            box["report"] = run_grid(
                [RunSpec("GS", "BFS", "Subway", scale=SCALE)], jobs=1,
                timeout=0.001, retries=0,
            )

        t = threading.Thread(target=work)
        t.start()
        t.join()
        assert box["report"].cells[0].status == "ok"


class TestCheckpointResume:
    def test_without_checkpoints_every_attempt_crashes(self, crash_at_3_engine):
        report = run_grid(
            [RunSpec("GS", "BFS", "CrashAt3", scale=SCALE)], jobs=1, retries=1
        )
        assert report.cells[0].status == "failed"
        assert report.cells[0].attempts == 2

    def test_retry_resumes_from_checkpoint_serial(self, crash_at_3_engine,
                                                  tmp_path):
        spec = RunSpec("GS", "BFS", "CrashAt3", scale=SCALE)
        report = run_grid([spec], jobs=1, retries=1,
                          checkpoint_dir=str(tmp_path))
        cell = report.cells[0]
        assert cell.status == "ok"
        assert cell.attempts == 2  # crashed once, resumed past iteration 3
        subway = run_grid(
            [RunSpec("GS", "BFS", "Subway", scale=SCALE)], jobs=1
        ).cells[0].result
        assert np.array_equal(cell.result.values, subway.values)
        assert os.listdir(tmp_path) == []  # cleared on success

    def test_retry_resumes_from_checkpoint_parallel(self, crash_at_3_engine,
                                                    tmp_path):
        spec = RunSpec("GS", "BFS", "CrashAt3", scale=SCALE)
        report = run_grid([spec], jobs=2, retries=1,
                          checkpoint_dir=str(tmp_path))
        cell = report.cells[0]
        assert cell.status == "ok"
        assert cell.attempts == 2
        assert os.listdir(tmp_path) == []

    def test_grid_specs_stamp_chaos_fields(self):
        plan = standard_plan()
        specs = grid_specs(["GS"], ["BFS"], ["Subway"], scale=SCALE,
                           seed=3, fault_plan=plan)
        assert specs[0].seed == 3
        assert specs[0].fault_plan == plan


class TestReport:
    def test_result_map_shape(self):
        specs = grid_specs(["FK"], ["BFS"], ["Subway", "Ascetic"], scale=SCALE)
        report = run_grid(specs, jobs=1)
        grid = report.result_map()
        assert set(grid) == {("FK", "BFS")}
        assert set(grid[("FK", "BFS")]) == {"Subway", "Ascetic"}

    def test_summary_mentions_counts(self, tmp_path):
        spec = RunSpec("FK", "BFS", "Subway", scale=SCALE)
        report = run_grid([spec], cache=tmp_path)
        text = report.summary()
        assert "1 computed" in text
        assert "cache:" in text

    def test_validates_arguments(self):
        spec = RunSpec("FK", "BFS", "Subway", scale=SCALE)
        with pytest.raises(ValueError):
            run_grid([spec], jobs=0)
        with pytest.raises(ValueError):
            run_grid([spec], retries=-1)
        with pytest.raises(TypeError):
            run_grid(["not-a-spec"])

    def test_unknown_dataset_fails_cell_not_grid(self):
        report = run_grid([RunSpec("ZZ", "BFS", "Subway", scale=SCALE)], jobs=1)
        assert report.cells[0].status == "failed"
        assert report.n_failed == 1
