"""Tests for the named scaled datasets (Table 3 analogues)."""

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASETS,
    DEFAULT_SCALE,
    PAPER_GPU_MEMORY_BYTES,
    load_dataset,
    rmat_dataset,
)

from conftest import assert_graph_valid

SCALE = 2e-4  # small enough for fast tests


class TestRegistry:
    def test_all_table3_datasets_present(self):
        assert set(DATASETS) == {"GS", "FK", "FS", "UK"}

    def test_paper_counts_match_table3(self):
        assert DATASETS["GS"].paper_edges == 1_800_000_000
        assert DATASETS["FK"].paper_vertices == 68_350_000
        assert DATASETS["FS"].paper_edges == 3_610_000_000
        assert DATASETS["UK"].paper_vertices == 106_860_000

    def test_directedness_matches_table3(self):
        assert DATASETS["GS"].directed and DATASETS["UK"].directed
        assert not DATASETS["FK"].directed and not DATASETS["FS"].directed


class TestLoading:
    @pytest.mark.parametrize("abbr", ["GS", "FK", "FS", "UK"])
    def test_load_valid(self, abbr):
        ds = load_dataset(abbr, scale=SCALE)
        assert_graph_valid(ds.graph)
        assert ds.graph.name == abbr

    def test_scaled_counts(self):
        ds = load_dataset("FK", scale=SCALE)
        spec = DATASETS["FK"]
        n_expect = int(spec.paper_vertices * SCALE)
        assert ds.graph.n_vertices == n_expect
        # Undirected edges stored as two arcs: arc count ≈ paper edges × scale
        # (±1 for the halving round-trip).
        assert abs(ds.graph.n_edges - int(spec.paper_edges * SCALE)) <= 2

    def test_directed_flag_propagates(self):
        assert load_dataset("UK", scale=SCALE).graph.directed
        assert not load_dataset("FK", scale=SCALE).graph.directed

    def test_gpu_memory_scales_with_data(self):
        ds = load_dataset("GS", scale=SCALE)
        assert ds.gpu_memory_bytes == int(PAPER_GPU_MEMORY_BYTES * SCALE)

    def test_weighted_doubles_edge_bytes(self):
        a = load_dataset("GS", scale=SCALE)
        b = load_dataset("GS", scale=SCALE, weighted=True)
        assert b.graph.edge_array_bytes == 2 * a.graph.edge_array_bytes

    def test_deterministic(self):
        a = load_dataset("UK", scale=SCALE).graph
        b = load_dataset("UK", scale=SCALE).graph
        assert np.array_equal(a.indices, b.indices)

    def test_unknown_abbreviation(self):
        with pytest.raises(KeyError):
            load_dataset("XX")

    def test_social_ids_are_shuffled(self):
        """KONECT/SNAP-style shuffling: active sets spread over the edge
        array (the Fig. 2 uniformity the §3.3 sizing relies on)."""
        from repro.graph.properties import locality_fraction

        ds = load_dataset("FK", scale=SCALE)
        assert locality_fraction(ds.graph, window=256) < 0.2

    def test_web_ids_keep_crawl_order(self):
        from repro.graph.properties import locality_fraction

        ds = load_dataset("UK", scale=SCALE)
        assert locality_fraction(ds.graph, window=256) > 0.5

    def test_memory_dataset_ratio_preserved(self):
        """The defining experimental condition: dataset:GPU-memory ratio at
        any scale matches the paper-scale ratio."""
        for abbr in DATASETS:
            ds = load_dataset(abbr, scale=SCALE)
            scaled_ratio = ds.graph.dataset_bytes / ds.gpu_memory_bytes
            paper_edge_bytes = DATASETS[abbr].paper_edges * 4
            paper_vertex_bytes = DATASETS[abbr].paper_vertices * 24
            paper_ratio = (paper_edge_bytes + paper_vertex_bytes) / PAPER_GPU_MEMORY_BYTES
            assert scaled_ratio == pytest.approx(paper_ratio, rel=0.05)


class TestRMATFamily:
    def test_sizes(self):
        ds = rmat_dataset(2.5e9, scale=1e-4)
        assert ds.spec.paper_edges == int(2.5e9)
        assert abs(ds.graph.n_edges - int(2.5e9 * 1e-4)) <= 2

    def test_vertex_interpolation(self):
        lo = rmat_dataset(2.5e9, scale=1e-4)
        hi = rmat_dataset(12e9, scale=1e-4)
        assert lo.spec.paper_vertices == pytest.approx(40e6, rel=0.01)
        assert hi.spec.paper_vertices == pytest.approx(100e6, rel=0.01)

    def test_weighted(self):
        ds = rmat_dataset(2.5e9, scale=5e-5, weighted=True)
        assert ds.graph.is_weighted

    def test_abbr(self):
        assert rmat_dataset(5e9, scale=5e-5).abbr == "RMAT-5B"


class TestMultiScaleConsistency:
    @pytest.mark.parametrize("abbr", ["FK", "UK"])
    def test_structure_stable_across_scales(self, abbr):
        """Scaling changes size, not structure: degree skew and locality
        stay put, and counts track the scale linearly."""
        from repro.graph.properties import degree_gini, locality_fraction

        small = load_dataset(abbr, scale=5e-5)
        large = load_dataset(abbr, scale=2e-4)
        assert large.graph.n_edges == pytest.approx(
            4 * small.graph.n_edges, rel=0.02
        )
        assert degree_gini(large.graph) == pytest.approx(
            degree_gini(small.graph), abs=0.12
        )
        # Locality must be measured with a window proportional to n to be
        # scale-invariant (a fixed window covers a bigger id-share of a
        # smaller graph).
        loc = lambda ds: locality_fraction(ds.graph, window=ds.graph.n_vertices // 50)
        assert loc(large) == pytest.approx(loc(small), abs=0.15)

    def test_gpu_memory_tracks_scale(self):
        a = load_dataset("GS", scale=5e-5)
        b = load_dataset("GS", scale=2e-4)
        assert b.gpu_memory_bytes == pytest.approx(4 * a.gpu_memory_bytes, rel=0.01)
