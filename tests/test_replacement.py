"""Tests for the §3.4 hotness table and fragment swap planning."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.replacement import HotnessTable


def table(n=64, policy="last", threshold=1):
    return HotnessTable(n, policy=policy, stale_threshold=threshold)


class TestUpdate:
    def test_binarized(self):
        h = table(4)
        h.update(np.array([0, 5, 1, 0]))
        assert list(h.last) == [0, 1, 1, 0]
        assert list(h.cumulative) == [0, 1, 1, 0]

    def test_cumulative_counts_iterations(self):
        h = table(2)
        h.update(np.array([3, 0]))
        h.update(np.array([9, 0]))
        assert list(h.cumulative) == [2, 0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            table(4).update(np.zeros(5))

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            HotnessTable(4, policy="lru")
        with pytest.raises(ValueError):
            HotnessTable(4, stale_threshold=-1)


class TestStaleness:
    def test_last_policy_cold_chunks_stale(self):
        h = table(3, policy="last")
        h.update(np.array([1, 0, 1]))
        assert list(h.staleness()) == [False, True, False]

    def test_cumulative_policy_consumed_chunks_stale(self):
        h = table(3, policy="cumulative", threshold=1)
        h.update(np.array([1, 1, 0]))
        assert not h.staleness().any()  # touched once: not yet consumed
        h.update(np.array([1, 0, 0]))
        assert list(h.staleness()) == [True, False, False]


class TestPlanSwaps:
    def _resident_front(self, n, k):
        r = np.zeros(n, dtype=bool)
        r[:k] = True
        return r

    def test_balanced_plan(self):
        h = table(64, policy="last")
        # Front 32 resident but cold; rear 32 hot but absent.
        touched = np.zeros(64)
        touched[32:] = 1
        h.update(touched)
        plan = h.plan_swaps(self._resident_front(64, 32), budget_chunks=16,
                            fragment_chunks=8)
        assert plan.n_swaps == 16
        assert plan.evict.size == plan.load.size
        assert plan.evict.max() < 32 and plan.load.min() >= 32

    def test_budget_respected(self):
        h = table(64, policy="last")
        touched = np.zeros(64)
        touched[32:] = 1
        h.update(touched)
        plan = h.plan_swaps(self._resident_front(64, 32), budget_chunks=9,
                            fragment_chunks=8)
        assert plan.n_swaps <= 9

    def test_fragment_alignment(self):
        h = table(64, policy="last")
        touched = np.zeros(64)
        touched[32:] = 1
        h.update(touched)
        plan = h.plan_swaps(self._resident_front(64, 32), budget_chunks=64,
                            fragment_chunks=8)
        # Loaded chunks form whole fragments.
        assert set(plan.load // 8) <= set(range(4, 8))
        for f in set(plan.load // 8):
            assert np.count_nonzero(plan.load // 8 == f) == 8

    def test_no_budget_no_plan(self):
        h = table(16)
        assert h.plan_swaps(np.ones(16, bool), 0).n_swaps == 0

    def test_no_candidates_no_plan(self):
        h = table(16, policy="last")
        h.update(np.ones(16))  # everything hot
        plan = h.plan_swaps(self._resident_front(16, 8), budget_chunks=8,
                            fragment_chunks=4)
        assert plan.n_swaps == 0  # nothing stale to evict

    def test_mixed_fragments_not_touched(self):
        h = table(16, policy="last")
        h.update(np.zeros(16))
        resident = np.zeros(16, dtype=bool)
        resident[::2] = True  # every fragment partially resident
        plan = h.plan_swaps(resident, budget_chunks=16, fragment_chunks=4)
        assert plan.n_swaps == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            table(8).plan_swaps(np.ones(4, bool), 4)

    def test_empty_table(self):
        h = HotnessTable(0)
        assert h.plan_swaps(np.zeros(0, bool), 10).n_swaps == 0

    @given(
        st.integers(0, 2**24 - 1),
        st.integers(0, 2**24 - 1),
        st.integers(1, 30),
        st.integers(1, 8),
    )
    def test_property_plan_validity(self, res_bits, touch_bits, budget, frag):
        """Any plan evicts only resident chunks, loads only absent ones,
        stays balanced, and respects the budget."""
        n = 24
        h = table(n, policy="last")
        h.update(np.array([(touch_bits >> i) & 1 for i in range(n)]))
        resident = np.array([(res_bits >> i) & 1 for i in range(n)], dtype=bool)
        plan = h.plan_swaps(resident, budget, fragment_chunks=frag)
        assert plan.evict.size == plan.load.size
        assert plan.n_swaps <= budget
        if plan.n_swaps:
            assert resident[plan.evict].all()
            assert not resident[plan.load].any()
            assert np.unique(plan.evict).size == plan.evict.size
            assert np.unique(plan.load).size == plan.load.size


class TestConstructorValidation:
    def test_last_policy_rejects_threshold_above_one(self):
        """``last`` is binary, so any threshold > 1 would mark every chunk
        stale — including ones touched in the previous iteration."""
        with pytest.raises(ValueError, match="stale_threshold"):
            table(8, policy="last", threshold=2)

    @pytest.mark.parametrize("threshold", [0, 1])
    def test_last_policy_accepts_binary_thresholds(self, threshold):
        h = table(8, policy="last", threshold=threshold)
        h.update(np.arange(8))
        stale = h.staleness()
        # Threshold 0 marks nothing stale; 1 marks exactly the untouched.
        if threshold == 0:
            assert not stale.any()
        else:
            assert np.array_equal(stale, h.last == 0)

    def test_cumulative_policy_allows_large_thresholds(self):
        h = table(8, policy="cumulative", threshold=5)
        assert not h.staleness().any()


def _bits_to_runs(dense):
    """Merged half-open intervals of the set chunks in a dense 0/1 array."""
    d = np.diff(np.concatenate(([0], (dense > 0).astype(np.int8), [0])))
    return np.nonzero(d == 1)[0], np.nonzero(d == -1)[0]


class TestUpdateRuns:
    """Interval-fed updates must be indistinguishable from dense updates."""

    @given(st.lists(st.integers(0, 2**24 - 1), min_size=1, max_size=6))
    def test_property_runs_equal_dense(self, iterations):
        n = 24
        by_runs, by_dense = table(n), table(n)
        for bits in iterations:
            dense = np.array([(bits >> i) & 1 for i in range(n)])
            starts, ends = _bits_to_runs(dense)
            by_runs.update_runs(starts, ends)
            by_dense.update(dense)
        assert np.array_equal(by_runs.cumulative, by_dense.cumulative)
        assert np.array_equal(by_runs.last, by_dense.last)
        assert np.array_equal(by_runs.staleness(), by_dense.staleness())

    def test_updates_stay_queued_until_read(self):
        h = table(16)
        h.update_runs(np.array([0]), np.array([4]))
        h.update_runs(np.array([8]), np.array([12]))
        assert len(h._pending) == 2
        assert not h._cumulative.any()  # raw array untouched
        assert list(h.last[:13]) == [0] * 8 + [1] * 4 + [0]
        assert not h._pending  # reading materialized everything
        assert list(h.cumulative[:5]) == [1, 1, 1, 1, 0]

    def test_mixed_dense_and_runs(self):
        """A dense update folds pending intervals in first."""
        h, ref = table(8), table(8)
        h.update_runs(np.array([0]), np.array([3]))
        h.update(np.array([0, 1, 0, 0, 1, 0, 0, 0]))
        ref.update(np.array([1, 1, 1, 0, 0, 0, 0, 0]))
        ref.update(np.array([0, 1, 0, 0, 1, 0, 0, 0]))
        assert np.array_equal(h.cumulative, ref.cumulative)
        assert np.array_equal(h.last, ref.last)

    def test_overlapping_intervals_rejected(self):
        h = table(16)
        with pytest.raises(ValueError):
            h.update_runs(np.array([0, 2]), np.array([3, 5]))

    def test_out_of_range_rejected(self):
        h = table(16)
        with pytest.raises(ValueError):
            h.update_runs(np.array([10]), np.array([17]))
        with pytest.raises(ValueError):
            h.update_runs(np.array([-1]), np.array([3]))

    def test_empty_update_counts_as_iteration(self):
        """An iteration touching nothing still resets ``last``."""
        h = table(4)
        h.update_runs(np.array([0]), np.array([4]))
        empty = np.empty(0, dtype=np.int64)
        h.update_runs(empty, empty)
        assert not h.last.any()
        assert list(h.cumulative) == [1, 1, 1, 1]


class TestPlanSwapsResidentCounts:
    """Passing precomputed per-fragment resident counts must not change
    the plan — it only skips the reduceat."""

    @given(
        st.integers(0, 2**24 - 1),
        st.integers(0, 2**24 - 1),
        st.integers(1, 30),
        st.integers(1, 8),
    )
    def test_property_same_plan(self, res_bits, touch_bits, budget, frag):
        n = 24
        h = table(n, policy="last")
        h.update(np.array([(touch_bits >> i) & 1 for i in range(n)]))
        resident = np.array([(res_bits >> i) & 1 for i in range(n)],
                            dtype=bool)
        counts = h.fragment_resident_counts(resident, frag)
        a = h.plan_swaps(resident, budget, fragment_chunks=frag)
        b = h.plan_swaps(resident, budget, fragment_chunks=frag,
                         resident_counts=counts)
        assert np.array_equal(a.evict, b.evict)
        assert np.array_equal(a.load, b.load)
