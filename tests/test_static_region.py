"""Tests for the Static Region chunk table."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.static_region import StaticRegion
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph


@pytest.fixture()
def graph():
    return rmat_graph(8, 2000, seed=21, directed=True)


def brute_vertex_bitmap(region):
    """Oracle: vertex static iff every byte of its edge range is resident."""
    g = region.graph
    bpe = g.bytes_per_edge
    out = np.zeros(g.n_vertices, dtype=bool)
    for v in range(g.n_vertices):
        lo, hi = g.indptr[v] * bpe, g.indptr[v + 1] * bpe
        if hi == lo:
            out[v] = True
            continue
        chunks = range(lo // region.chunk_bytes, (hi - 1) // region.chunk_bytes + 1)
        out[v] = all(region.resident[c] for c in chunks)
    return out


class TestFills:
    def test_front_fill(self, graph):
        r = StaticRegion(graph, 1000, chunk_bytes=16, fill="front")
        assert r.resident[: r.capacity_chunks].all()
        assert not r.resident[r.capacity_chunks :].any()

    def test_rear_fill(self, graph):
        r = StaticRegion(graph, 1000, chunk_bytes=16, fill="rear")
        assert r.resident[-r.capacity_chunks :].all()

    def test_random_fill_capacity(self, graph):
        r = StaticRegion(graph, 1000, chunk_bytes=16, fill="random", seed=3)
        assert r.resident_chunks <= r.capacity_chunks

    def test_random_fill_deterministic(self, graph):
        a = StaticRegion(graph, 1000, chunk_bytes=16, fill="random", seed=3)
        b = StaticRegion(graph, 1000, chunk_bytes=16, fill="random", seed=3)
        assert np.array_equal(a.resident, b.resident)

    def test_random_fill_is_fragmented(self, graph):
        r = StaticRegion(graph, 2000, chunk_bytes=8, fill="random", seed=4,
                         fragment_chunks=16)
        runs = np.diff(np.nonzero(np.diff(r.resident.astype(int)))[0])
        # Contiguous runs, not single scattered chunks.
        assert r.resident_chunks > 0

    def test_lazy_fill_starts_empty(self, graph):
        r = StaticRegion(graph, 1000, chunk_bytes=16, fill="lazy")
        assert r.resident_chunks == 0
        assert r.free_chunks == r.capacity_chunks

    def test_unknown_fill(self, graph):
        with pytest.raises(ValueError):
            StaticRegion(graph, 1000, fill="magic")

    def test_capacity_capped_at_dataset(self, graph):
        r = StaticRegion(graph, 10**9, chunk_bytes=16, fill="front")
        assert r.capacity_chunks == r.n_chunks
        assert r.vertex_static_bitmap().all()

    def test_zero_capacity(self, graph):
        r = StaticRegion(graph, 0, chunk_bytes=16, fill="front")
        assert r.resident_chunks == 0
        # Only degree-0 vertices are "static".
        vb = r.vertex_static_bitmap()
        assert np.array_equal(vb, graph.out_degree() == 0)

    def test_invalid_geometry(self, graph):
        with pytest.raises(ValueError):
            StaticRegion(graph, -1)
        with pytest.raises(ValueError):
            StaticRegion(graph, 10, chunk_bytes=0)


class TestVertexBitmap:
    @pytest.mark.parametrize("fill", ["front", "rear", "random"])
    def test_matches_bruteforce(self, graph, fill):
        r = StaticRegion(graph, 1500, chunk_bytes=8, fill=fill, seed=9)
        assert np.array_equal(r.vertex_static_bitmap(), brute_vertex_bitmap(r))

    def test_cache_invalidated_by_swap(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        before = r.vertex_static_bitmap().copy()
        resident = np.nonzero(r.resident)[0]
        missing = np.nonzero(~r.resident)[0]
        r.swap(resident[:4], missing[:4])
        after = r.vertex_static_bitmap()
        assert np.array_equal(after, brute_vertex_bitmap(r))
        assert not np.array_equal(before, after)

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], [], 5)
        r = StaticRegion(g, 100, chunk_bytes=8)
        assert r.vertex_static_bitmap().all()


class TestChunkTouchCounts:
    def test_counts_match_bruteforce(self, graph):
        r = StaticRegion(graph, 1000, chunk_bytes=8)
        rng = np.random.default_rng(2)
        active = rng.random(graph.n_vertices) < 0.3
        counts = r.chunk_touch_counts(active)
        brute = np.zeros(r.n_chunks, dtype=np.int64)
        bpe = graph.bytes_per_edge
        for v in np.nonzero(active)[0]:
            lo, hi = graph.indptr[v] * bpe, graph.indptr[v + 1] * bpe
            if hi > lo:
                brute[lo // 8 : (hi - 1) // 8 + 1] += 1
        assert np.array_equal(counts, brute)

    def test_empty_active(self, graph):
        r = StaticRegion(graph, 1000, chunk_bytes=8)
        assert r.chunk_touch_counts(np.zeros(graph.n_vertices, bool)).sum() == 0


class TestSwap:
    def test_swap_moves_residency(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        evict = np.nonzero(r.resident)[0][:3]
        load = np.nonzero(~r.resident)[0][:3]
        moved = r.swap(evict, load)
        assert moved == 3 * 8
        assert not r.resident[evict].any()
        assert r.resident[load].all()

    def test_swap_nonresident_eviction_rejected(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        missing = np.nonzero(~r.resident)[0]
        with pytest.raises(ValueError):
            r.swap(missing[:1], missing[1:2])

    def test_swap_resident_load_rejected(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        resident = np.nonzero(r.resident)[0]
        with pytest.raises(ValueError):
            r.swap(resident[:1], resident[1:2])

    def test_swap_overflow_rejected(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        missing = np.nonzero(~r.resident)[0]
        with pytest.raises(ValueError):
            r.swap(np.empty(0, dtype=np.int64), missing[:1])


class TestShrink:
    def test_shrink_releases_chunks(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        released = r.shrink_to(400)
        assert released == r.resident_chunks  # halved: 50 released of 100
        assert r.capacity_chunks == 50
        assert r.resident_chunks == 50

    def test_shrink_to_zero(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        r.shrink_to(0)
        assert r.resident_chunks == 0
        vb = r.vertex_static_bitmap()
        assert np.array_equal(vb, graph.out_degree() == 0)

    def test_grow_is_noop_for_residency(self, graph):
        r = StaticRegion(graph, 400, chunk_bytes=8, fill="front")
        before = r.resident.copy()
        assert r.shrink_to(800) == 0
        assert np.array_equal(r.resident, before)
        assert r.capacity_chunks == 100


class TestPromote:
    def test_promote_marks_vertex_spans(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="lazy")
        mask = np.zeros(graph.n_vertices, dtype=bool)
        mask[:20] = True
        promoted = r.promote_vertices(mask)
        assert promoted > 0
        assert r.resident_chunks == promoted
        # Promoted vertices with edges should now be static.
        vb = r.vertex_static_bitmap()
        deg = graph.out_degree()
        covered = vb[:20] | (deg[:20] == 0)
        assert covered.any()

    def test_promote_respects_capacity(self, graph):
        r = StaticRegion(graph, 160, chunk_bytes=8, fill="lazy")  # 20 chunks
        mask = np.ones(graph.n_vertices, dtype=bool)
        r.promote_vertices(mask)
        assert r.resident_chunks <= r.capacity_chunks

    def test_promote_budget_parameter(self, graph):
        r = StaticRegion(graph, 8000, chunk_bytes=8, fill="lazy")
        mask = np.ones(graph.n_vertices, dtype=bool)
        r.promote_vertices(mask, max_new_chunks=5)
        assert r.resident_chunks <= 5

    def test_promote_empty_mask(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="lazy")
        assert r.promote_vertices(np.zeros(graph.n_vertices, bool)) == 0

    def test_promote_full_region_noop(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        assert r.free_chunks == 0
        assert r.promote_vertices(np.ones(graph.n_vertices, bool)) == 0

    @given(st.integers(0, 2**20 - 1), st.integers(1, 40))
    def test_property_promotion_bounded(self, bits, budget):
        g = rmat_graph(6, 400, seed=31, directed=True)
        r = StaticRegion(g, 64 * 8, chunk_bytes=8, fill="lazy")
        mask = np.array([(bits >> (i % 20)) & 1 for i in range(g.n_vertices)], dtype=bool)
        promoted = r.promote_vertices(mask, max_new_chunks=budget)
        assert promoted <= min(budget, r.capacity_chunks)
        assert r.resident_chunks <= r.capacity_chunks
        assert np.array_equal(r.vertex_static_bitmap(), brute_vertex_bitmap(r))


def brute_touch_counts(region, active):
    """Oracle: the pre-bincount ``np.add.at`` range-mark implementation."""
    counts = np.zeros(region.n_chunks, dtype=np.int64)
    vs = np.nonzero(active & region._has_edges)[0]
    if vs.size == 0 or region.n_chunks == 0:
        return counts
    diff = np.zeros(region.n_chunks + 1, dtype=np.int64)
    np.add.at(diff, region._c_lo[vs], 1)
    np.add.at(diff, region._c_hi[vs] + 1, -1)
    return np.cumsum(diff[:-1])


class TestBincountRangeMark:
    """The bincount-based touch counting must agree with the old
    ``np.add.at`` scatter on every mask — same math, faster scatter."""

    @given(st.integers(0, 2**32 - 1))
    def test_property_matches_add_at(self, bits):
        g = rmat_graph(6, 600, seed=23, directed=True)
        r = StaticRegion(g, g.edge_array_bytes // 2, chunk_bytes=16)
        mask = np.array(
            [(bits >> (i % 32)) & 1 for i in range(g.n_vertices)], dtype=bool
        )
        got = r.chunk_touch_counts(mask)
        assert got.dtype == np.int64
        assert np.array_equal(got, brute_touch_counts(r, mask))

    def test_full_mask(self, graph):
        r = StaticRegion(graph, graph.edge_array_bytes, chunk_bytes=32)
        mask = np.ones(graph.n_vertices, dtype=bool)
        assert np.array_equal(r.chunk_touch_counts(mask),
                              brute_touch_counts(r, mask))

    def test_empty_mask(self, graph):
        r = StaticRegion(graph, graph.edge_array_bytes, chunk_bytes=32)
        mask = np.zeros(graph.n_vertices, dtype=bool)
        assert r.chunk_touch_counts(mask).sum() == 0


class TestFillPolicyParity:
    """All prefilling policies must charge the same number of chunks —
    ``random`` used to floor to whole fragments and come up short."""

    @pytest.mark.parametrize("capacity_frac", [0.1, 0.33, 0.5, 0.77, 1.0])
    def test_same_resident_chunks(self, graph, capacity_frac):
        cap = int(graph.edge_array_bytes * capacity_frac)
        resident = {
            fill: StaticRegion(graph, cap, chunk_bytes=8, fill=fill,
                               fragment_chunks=7).resident_chunks
            for fill in ("front", "rear", "random")
        }
        assert resident["front"] == resident["rear"] == resident["random"]

    @given(st.integers(1, 2**14), st.integers(1, 16))
    def test_property_random_fill_exact(self, cap, frag):
        g = rmat_graph(6, 400, seed=31, directed=True)
        r = StaticRegion(g, cap, chunk_bytes=8, fill="random", seed=3,
                         fragment_chunks=frag)
        assert r.resident_chunks == r.capacity_chunks


class TestTouchedChunkRuns:
    """The merged-interval touch representation must agree chunk-for-chunk
    with the dense counts: a chunk is inside some run iff its count > 0."""

    @staticmethod
    def _dense_cover(region, run_s, run_e):
        cover = np.zeros(region.n_chunks, dtype=bool)
        for s, e in zip(run_s.tolist(), run_e.tolist()):
            cover[s:e] = True
        return cover

    @given(st.integers(0, 2**32 - 1))
    def test_property_runs_cover_nonzero_counts(self, bits):
        g = rmat_graph(6, 600, seed=23, directed=True)
        r = StaticRegion(g, g.edge_array_bytes // 2, chunk_bytes=16)
        mask = np.array(
            [(bits >> (i % 32)) & 1 for i in range(g.n_vertices)], dtype=bool
        )
        run_s, run_e = r.touched_chunk_runs(mask)
        assert np.array_equal(self._dense_cover(r, run_s, run_e),
                              r.chunk_touch_counts(mask) > 0)

    @given(st.integers(0, 2**32 - 1))
    def test_property_runs_disjoint_increasing(self, bits):
        g = rmat_graph(6, 600, seed=23, directed=True)
        r = StaticRegion(g, g.edge_array_bytes // 2, chunk_bytes=16)
        mask = np.array(
            [(bits >> (i % 32)) & 1 for i in range(g.n_vertices)], dtype=bool
        )
        run_s, run_e = r.touched_chunk_runs(mask)
        assert run_s.shape == run_e.shape
        assert np.all(run_e > run_s)
        # Strictly separated: adjacent or overlapping spans were merged.
        assert np.all(run_s[1:] > run_e[:-1])

    def test_empty_mask(self, graph):
        r = StaticRegion(graph, 1000, chunk_bytes=8)
        run_s, run_e = r.touched_chunk_runs(
            np.zeros(graph.n_vertices, dtype=bool))
        assert run_s.size == 0 and run_e.size == 0

    def test_full_mask_single_run(self, graph):
        r = StaticRegion(graph, 1000, chunk_bytes=8)
        run_s, run_e = r.touched_chunk_runs(
            np.ones(graph.n_vertices, dtype=bool))
        assert run_s.size == 1
        assert run_s[0] == 0 and run_e[0] == r.n_chunks


class TestResidentRuns:
    """Run-length residency view: reconstructs the dense mask exactly and
    is re-derived after every mutator."""

    def _reconstruct(self, region):
        starts, ends, prefix = region.resident_runs()
        mask = np.zeros(region.n_chunks, dtype=bool)
        for s, e in zip(starts.tolist(), ends.tolist()):
            mask[s:e] = True
        assert prefix.size == starts.size + 1
        assert np.array_equal(np.diff(prefix), ends - starts)
        return mask

    @pytest.mark.parametrize("fill", ["front", "rear", "random", "lazy"])
    def test_matches_dense_mask(self, graph, fill):
        r = StaticRegion(graph, 1200, chunk_bytes=8, fill=fill, seed=5)
        assert np.array_equal(self._reconstruct(r), r.resident)

    def test_invalidated_by_every_mutator(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        assert np.array_equal(self._reconstruct(r), r.resident)
        evict = np.nonzero(r.resident)[0][:3]
        load = np.nonzero(~r.resident)[0][:3]
        r.swap(evict, load)
        assert np.array_equal(self._reconstruct(r), r.resident)
        r.shrink_to(400)
        assert np.array_equal(self._reconstruct(r), r.resident)
        lazy = StaticRegion(graph, 800, chunk_bytes=8, fill="lazy")
        assert self._reconstruct(lazy).sum() == 0
        lazy.promote_vertices(np.ones(graph.n_vertices, dtype=bool),
                              max_new_chunks=7)
        assert np.array_equal(self._reconstruct(lazy), lazy.resident)
        lazy.top_up(max_new_chunks=9)
        assert np.array_equal(self._reconstruct(lazy), lazy.resident)

    def test_fragment_counts_invalidated_by_swap(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        before = r.fragment_resident_counts(4).copy()
        evict = np.nonzero(r.resident)[0][:4]
        load = np.nonzero(~r.resident)[0][:4]
        r.swap(evict, load)
        after = r.fragment_resident_counts(4)
        bounds = np.arange(0, r.n_chunks, 4, dtype=np.int64)
        assert np.array_equal(
            after, np.add.reduceat(r.resident, bounds, dtype=np.int64))
        assert not np.array_equal(before, after)

    def test_fragment_counts_recomputed_on_new_size(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        for f in (4, 16, 4):
            bounds = np.arange(0, r.n_chunks, f, dtype=np.int64)
            assert np.array_equal(
                r.fragment_resident_counts(f),
                np.add.reduceat(r.resident, bounds, dtype=np.int64))


class TestResidentCountInRuns:
    """Interval intersection count ≡ dense mask count over the same runs."""

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**16 - 1))
    def test_property_matches_dense_count(self, touch_bits, res_bits):
        g = rmat_graph(6, 600, seed=29, directed=True)
        r = StaticRegion(g, g.edge_array_bytes // 2, chunk_bytes=16)
        # Scramble residency into an arbitrary pattern via the raw mask —
        # the count method must work for any residency layout.
        pat = np.array([(res_bits >> (i % 16)) & 1 for i in range(r.n_chunks)],
                       dtype=bool)
        r.resident[:] = pat
        r._invalidate()
        mask = np.array(
            [(touch_bits >> (i % 32)) & 1 for i in range(g.n_vertices)],
            dtype=bool)
        run_s, run_e = r.touched_chunk_runs(mask)
        dense = sum(int(r.resident[s:e].sum())
                    for s, e in zip(run_s.tolist(), run_e.tolist()))
        assert r.resident_count_in_runs(run_s, run_e) == dense

    def test_empty_runs(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="front")
        empty = np.empty(0, dtype=np.int64)
        assert r.resident_count_in_runs(empty, empty) == 0

    def test_no_residency(self, graph):
        r = StaticRegion(graph, 800, chunk_bytes=8, fill="lazy")
        run_s, run_e = r.touched_chunk_runs(
            np.ones(graph.n_vertices, dtype=bool))
        assert r.resident_count_in_runs(run_s, run_e) == 0
