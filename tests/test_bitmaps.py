"""Tests for the Fig. 4 bitmap algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitmaps import and_map, ondemand_map, split_active


def masks(n=24):
    return st.tuples(st.integers(0, 2**n - 1), st.integers(0, 2**n - 1)).map(
        lambda t: (
            np.array([(t[0] >> i) & 1 for i in range(n)], dtype=bool),
            np.array([(t[1] >> i) & 1 for i in range(n)], dtype=bool),
        )
    )


class TestAndMap:
    def test_basic(self):
        a = np.array([1, 1, 0, 0], dtype=bool)
        s = np.array([1, 0, 1, 0], dtype=bool)
        assert list(and_map(a, s)) == [True, False, False, False]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            and_map(np.zeros(3, bool), np.zeros(4, bool))


class TestOndemandMap:
    def test_xor_equals_active_minus_static(self):
        a = np.array([1, 1, 1, 0], dtype=bool)
        smap = np.array([1, 0, 0, 0], dtype=bool)
        assert list(ondemand_map(a, smap)) == [False, True, True, False]

    def test_subset_violation_rejected(self):
        a = np.array([0, 1], dtype=bool)
        smap = np.array([1, 0], dtype=bool)  # static map not ⊆ active
        with pytest.raises(ValueError):
            ondemand_map(a, smap)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ondemand_map(np.zeros(2, bool), np.zeros(3, bool))


class TestSplitActive:
    @given(masks())
    def test_property_partition_of_active(self, ms):
        """StaticMap and OndemandMap partition the active set exactly."""
        active, static = ms
        smap, odmap = split_active(active, static)
        assert not (smap & odmap).any()  # disjoint
        assert np.array_equal(smap | odmap, active)  # cover
        assert np.array_equal(smap, active & static)  # Fig. 4 definition

    @given(masks())
    def test_property_xor_identity(self, ms):
        """The paper's XOR formulation equals AND-NOT for subset maps."""
        active, static = ms
        smap, odmap = split_active(active, static)
        assert np.array_equal(odmap, active & ~static)
