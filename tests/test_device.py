"""Tests for the SimulatedGPU facade, including paper-scale charging."""

import pytest

from repro.gpusim.device import GPUSpec, SimulatedGPU


@pytest.fixture()
def gpu():
    return SimulatedGPU(GPUSpec(memory_bytes=10**6))


class TestCharging:
    def test_h2d_counts_payload(self, gpu):
        gpu.h2d(100)
        assert gpu.metrics.bytes_h2d == gpu.spec.pcie.payload_bytes(100)
        assert gpu.metrics.h2d_transfers == 1

    def test_zero_h2d_not_counted(self, gpu):
        gpu.h2d(0)
        assert gpu.metrics.h2d_transfers == 0

    def test_charge_scale_multiplies_bytes(self):
        spec = GPUSpec(memory_bytes=10**6)
        unscaled = SimulatedGPU(spec)
        scaled = SimulatedGPU(spec, charge_scale=100.0)
        unscaled.h2d(10**5)
        scaled.h2d(10**3)
        assert scaled.metrics.bytes_h2d == unscaled.metrics.bytes_h2d
        assert scaled.copy.busy_until == unscaled.copy.busy_until

    def test_charge_scale_multiplies_edges(self):
        spec = GPUSpec()
        a = SimulatedGPU(spec)
        b = SimulatedGPU(spec, charge_scale=10.0)
        a.edge_kernel(1000)
        b.edge_kernel(100)
        assert a.gpu.busy_until == b.gpu.busy_until
        assert a.metrics.edges_processed == b.metrics.edges_processed

    def test_invalid_charge_scale(self):
        with pytest.raises(ValueError):
            SimulatedGPU(GPUSpec(), charge_scale=0.0)

    def test_phase_accounting(self, gpu):
        with gpu.phase("Ttransfer"):
            gpu.h2d(1000)
        with gpu.phase("Tsr"):
            gpu.edge_kernel(1000)
        assert gpu.metrics.phase_seconds["Ttransfer"] > 0
        assert gpu.metrics.phase_seconds["Tsr"] > 0

    def test_phase_context_restores(self, gpu):
        with gpu.phase("Touter", iteration=3):
            with gpu.phase("Tinner"):
                assert gpu.events.current_phase == "Tinner"
                assert gpu.events.current_iteration == 3
            assert gpu.events.current_phase == "Touter"
        assert gpu.events.current_phase is None
        assert gpu.events.current_iteration is None

    def test_zero_ops_uniformly_skipped(self, gpu):
        """Empty ops leave no counters, no lane time, and no events."""
        gpu = SimulatedGPU(GPUSpec(memory_bytes=10**6), record_events=True)
        gpu.h2d(0)
        gpu.d2h(0)
        gpu.edge_kernel(0)
        gpu.vertex_scan(0)
        gpu.vertex_scan(100, passes=0)
        gpu.cpu_gather(0)
        gpu.cpu_work(0.0)
        assert gpu.events.events == []
        assert gpu.metrics.as_dict() == {
            k: 0 for k in gpu.metrics.as_dict()
        }
        for lane in (gpu.gpu, gpu.copy, gpu.cpu):
            assert lane.n_ops == 0 and lane.busy_until == 0.0


class TestScheduling:
    def test_lanes_independent(self, gpu):
        t_copy = gpu.h2d(10**6)
        t_gpu = gpu.edge_kernel(10**6)
        assert t_copy > 0 and t_gpu > 0
        assert gpu.clock.now == 0.0  # nothing synced yet

    def test_sync_all(self, gpu):
        gpu.h2d(10**6)
        gpu.edge_kernel(10**6)
        gpu.cpu_gather(10**6)
        end = gpu.sync()
        assert gpu.clock.now == end
        assert end == max(
            gpu.gpu.busy_until, gpu.copy.busy_until, gpu.cpu.busy_until
        )

    def test_dependency_chain(self, gpu):
        t1 = gpu.cpu_gather(10**6)
        t2 = gpu.h2d(10**6, after=t1)
        t3 = gpu.edge_kernel(10**6, after=t2)
        assert t1 < t2 < t3

    def test_idle_fraction(self, gpu):
        gpu.sync(gpu.cpu_gather(8 * 10**6))  # GPU idles through the gather
        gpu.sync(gpu.edge_kernel(100))
        assert 0.5 < gpu.gpu_idle_fraction() < 1.0

    def test_idle_fraction_zero_time(self, gpu):
        assert gpu.gpu_idle_fraction() == 0.0


class TestSpec:
    def test_with_memory(self):
        spec = GPUSpec(memory_bytes=100)
        assert spec.with_memory(500).memory_bytes == 500
        assert spec.with_memory(500).pcie is spec.pcie

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            GPUSpec(memory_bytes=0)

    def test_invalid_uvm_params(self):
        with pytest.raises(ValueError):
            GPUSpec(uvm_page_size=0)
        with pytest.raises(ValueError):
            GPUSpec(uvm_fault_latency=-1)
        with pytest.raises(ValueError):
            GPUSpec(uvm_kernel_penalty=0.5)

    def test_memory_allocator_uses_cap(self):
        gpu = SimulatedGPU(GPUSpec(memory_bytes=12345))
        assert gpu.memory.capacity == 12345
