"""Fleet serving tests: router policy, determinism, and the scaling pin.

The acceptance test at the bottom is the PR's serving-layer claim: under a
pinned 120-request load, a 4-device fleet beats a single device on p95
end-to-end latency, and the fleet run replays bit for bit (twice-run
digest identity).
"""

import pytest

from repro.gpusim.fabric import FabricSpec
from repro.serve import (
    FABRIC,
    FleetConfig,
    Router,
    ServeConfig,
    SLO_SCHEMA_FLEET,
    fleet_quick_config,
    run_fleet_test,
    run_load_test,
)
from repro.serve.pool import EnginePool
from repro.serve.slo import SLO_SCHEMA


class FakePool:
    """Just enough of EnginePool for Router.decide: warm keys + length."""

    def __init__(self, keys=()):
        self._keys = tuple(keys)

    def warm_keys(self):
        return self._keys

    def __len__(self):
        return len(self._keys)


class TestRouter:
    def make(self, n=4, mems=None, shard_over=None):
        spec = FabricSpec(n_devices=n, device_mems=mems)
        return Router(spec, shard_over)

    def test_warm_affinity_wins(self):
        router = self.make()
        pools = [FakePool(), FakePool([("GS", "plain")]),
                 FakePool(), FakePool()]
        d = router.decide(("GS", "plain"), 100, 1000, [0, 1, 2, 3], pools)
        assert d.target == 1
        assert d.reason == "warm-affinity"
        assert not d.sharded

    def test_warm_affinity_only_on_free_devices(self):
        router = self.make()
        pools = [FakePool(), FakePool([("GS", "plain")]),
                 FakePool(), FakePool()]
        d = router.decide(("GS", "plain"), 100, 1000, [0, 2], pools)
        assert d.reason == "least-loaded"
        assert d.target == 0

    def test_least_loaded_prefers_emptiest_pool(self):
        router = self.make()
        pools = [FakePool([("A", "plain"), ("B", "plain")]),
                 FakePool([("A", "plain")]), FakePool(), FakePool()]
        d = router.decide(("C", "plain"), 100, 1000, [0, 1, 2, 3], pools)
        assert d.target == 2  # empty pool, lowest id on the 2/3 tie

    def test_oversized_routes_to_fabric(self):
        router = self.make(shard_over=1.0)
        d = router.decide(("FK", "plain"), 2000, 1000, [0, 1, 2, 3],
                          [FakePool()] * 4)
        assert d.target == FABRIC
        assert d.reason == "oversized"
        assert d.sharded

    def test_capacity_is_largest_device(self):
        router = self.make(mems=(1000, 4000, 2000, 1000), shard_over=1.0)
        assert router.capacity(999) == 4000
        # 3000 bytes fits the biggest device, so it is not oversized.
        assert not router.oversized(3000, 999)
        assert router.oversized(5000, 999)

    def test_no_shard_over_disables_sharding(self):
        router = self.make(shard_over=None)
        d = router.decide(("FK", "plain"), 10**12, 1000, [0],
                          [FakePool()] * 4)
        assert not d.sharded

    def test_no_free_devices_raises(self):
        router = self.make()
        with pytest.raises(ValueError, match="free device"):
            router.decide(("GS", "plain"), 100, 1000, [], [FakePool()] * 4)

    def test_rejects_bad_shard_over(self):
        with pytest.raises(ValueError):
            Router(FabricSpec(n_devices=2), shard_over=0.0)
        with pytest.raises(ValueError):
            FleetConfig(shard_over=-1.0)


class TestFleetQuick:
    @pytest.fixture(scope="class")
    def quick_result(self):
        return run_fleet_test(fleet_quick_config())

    def test_twice_run_digest_identical(self, quick_result):
        again = run_fleet_test(fleet_quick_config())
        assert quick_result.run_digest() == again.run_digest()

    def test_report_carries_fleet_schema(self, quick_result):
        report = quick_result.report
        assert report["schema"] == SLO_SCHEMA_FLEET
        fleet = report["fleet"]
        assert fleet["n_dispatches"] > 0
        # The quick config is tuned so both regimes fire: GS replicates,
        # FK (over the shard_over threshold) runs fabric-wide.
        assert 0 < fleet["sharded_dispatches"] < fleet["n_dispatches"]
        assert fleet["exchange_bytes"] > 0

    def test_per_device_buckets(self, quick_result):
        devices = quick_result.report["fleet"]["devices"]
        n = quick_result.config.fabric.n_devices
        assert set(devices) == {str(d) for d in range(n)} | {"fabric"}
        for bucket in devices.values():
            assert 0.0 <= bucket["utilization"]
            assert bucket["busy_seconds"] >= 0.0
        assert devices["fabric"]["dispatches"] == \
            quick_result.report["fleet"]["sharded_dispatches"]

    def test_responses_carry_device(self, quick_result):
        n = quick_result.config.fabric.n_devices
        completed = [r for r in quick_result.responses
                     if r.finish_time is not None]
        assert completed
        for resp in completed:
            assert resp.device is not None
            assert resp.device == FABRIC or 0 <= resp.device < n
        # Some dispatch actually went fabric-wide.
        assert any(r.device == FABRIC for r in completed)

    def test_per_device_pool_stats_and_merge(self, quick_result):
        per_dev = quick_result.device_pool_stats
        assert sorted(per_dev) == list(
            range(quick_result.config.fabric.n_devices))
        merged = quick_result.pool_stats
        assert merged.misses == sum(s.misses for s in per_dev.values())
        assert merged.hits == sum(s.hits for s in per_dev.values())

    def test_every_request_answered(self, quick_result):
        assert len(quick_result.responses) == len(quick_result.requests)
        ids = [r.request.request_id for r in quick_result.responses]
        assert ids == [r.request_id for r in quick_result.requests]


def test_single_server_report_keeps_plain_schema():
    # The single-server simulator never emits dispatch markers, so its
    # report keeps the v1 schema — the pinned CI serve digest depends on
    # this staying true.
    from repro.serve import quick_config

    report = run_load_test(quick_config()).report
    assert report["schema"] == SLO_SCHEMA
    assert "fleet" not in report


class TestFleetScaling:
    """The acceptance pin: 4 devices beat 1 on p95 e2e at 120 requests."""

    CONFIG = ServeConfig(
        seed=3,
        n_requests=120,
        arrival_rate=4.0,
        graphs=("GS",),
        algorithms=("BFS", "CC"),
        engine="Ascetic",
        scale=5e-5,
        queue_capacity=200,
        queue_policy="reject",
        max_batch=2,
        max_engines=2,
    )

    def test_four_devices_beat_one_on_p95(self):
        single = run_load_test(self.CONFIG)
        fleet = run_fleet_test(FleetConfig(
            serve=self.CONFIG, fabric=FabricSpec(n_devices=4)))

        s = single.report
        f = fleet.report
        # Same offered load, nothing shed on the fleet side at 4x servers.
        assert f["counts"]["arrived"] == s["counts"]["arrived"] == 120
        assert f["counts"]["completed"] >= s["counts"]["completed"]
        p95_single = s["latency_seconds"]["e2e"]["p95"]
        p95_fleet = f["latency_seconds"]["e2e"]["p95"]
        assert p95_fleet < p95_single

        # And the fleet run replays bit for bit.
        again = run_fleet_test(FleetConfig(
            serve=self.CONFIG, fabric=FabricSpec(n_devices=4)))
        assert fleet.run_digest() == again.run_digest()
