"""Tests for the §3.3 partition-ratio equations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ratio import check_repartition, region_bytes, static_ratio


class TestEquation2:
    def test_paper_formula(self):
        # R = (1 − K·D/M)/(1 − K) with K=0.1, D=2M: R = (1−0.2)/0.9 ≈ 0.889
        assert static_ratio(0.1, 2_000, 1_000) == pytest.approx(0.8 / 0.9)

    def test_dataset_fits_means_all_static(self):
        assert static_ratio(0.1, 500, 1_000) == 1.0
        assert static_ratio(0.1, 1_000, 1_000) == 1.0

    def test_clips_to_zero_when_k_d_exceeds_m(self):
        # K·D ≥ M → Eq. 1 unsatisfiable → ratio clipped.
        assert static_ratio(0.5, 10_000, 1_000) == 0.0

    def test_floor_applied(self):
        assert static_ratio(0.5, 10_000, 1_000, floor=0.05) == 0.05

    def test_k_zero_gives_full_static_cap(self):
        # K=0: nothing on demand; R = 1 (but D > M still caps at 1).
        assert static_ratio(0.0, 2_000, 1_000) == 1.0

    def test_monotone_decreasing_in_dataset(self):
        rs = [static_ratio(0.1, d, 1_000) for d in (1_500, 2_000, 4_000, 8_000)]
        assert all(a >= b for a, b in zip(rs, rs[1:]))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            static_ratio(1.0, 10, 10)
        with pytest.raises(ValueError):
            static_ratio(-0.1, 10, 10)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            static_ratio(0.1, -1, 10)
        with pytest.raises(ValueError):
            static_ratio(0.1, 10, 0)

    @given(
        st.floats(0.0, 0.9),
        st.integers(1, 10**12),
        st.integers(1, 10**11),
    )
    def test_property_in_unit_interval(self, k, d, m):
        assert 0.0 <= static_ratio(k, d, m) <= 1.0

    @given(st.floats(0.01, 0.5), st.integers(10**6, 10**10))
    def test_property_eq1_satisfied(self, k, d):
        """When unclipped, Eq. 1 holds with equality:
        (D − M_static)·K + M_static = M."""
        m = d // 2
        r = static_ratio(k, d, m)
        if 0.0 < r < 1.0:
            m_static = r * m
            assert (d - m_static) * k + m_static == pytest.approx(m, rel=1e-9)


class TestRegionBytes:
    def test_split_sums_to_total(self):
        s, o = region_bytes(1000, 0.7, align=16)
        assert s + o == 1000
        assert s % 16 == 0

    def test_extremes(self):
        assert region_bytes(1000, 0.0) == (0, 1000)
        assert region_bytes(1000, 1.0) == (1000, 0)

    def test_alignment_rounds_down(self):
        s, _ = region_bytes(1000, 0.999, align=256)
        assert s == 768

    def test_invalid(self):
        with pytest.raises(ValueError):
            region_bytes(100, 1.5)
        with pytest.raises(ValueError):
            region_bytes(100, 0.5, align=0)


class TestEquation3:
    def test_no_overflow_no_repartition(self):
        d = check_repartition(
            v_ondemand=50, ondemand_capacity=100,
            v_static=10, static_capacity=100,
            v_total=60, dataset_bytes=1000,
        )
        assert not d.repartition

    def test_overflow_with_hot_static_keeps_region(self):
        # Static well-utilized: V_static/M_static ≥ 0.5·V/D.
        d = check_repartition(
            v_ondemand=200, ondemand_capacity=100,
            v_static=80, static_capacity=100,
            v_total=280, dataset_bytes=1000,
        )
        assert not d.repartition

    def test_overflow_with_cold_static_shrinks(self):
        d = check_repartition(
            v_ondemand=200, ondemand_capacity=100,
            v_static=1, static_capacity=1000,
            v_total=201, dataset_bytes=1000,
        )
        assert d.repartition
        # Eq. 3: shrink by M_static · V / D.
        assert d.shrink_bytes == int(1000 * 201 / 1000)

    def test_shrink_capped_at_capacity(self):
        d = check_repartition(
            v_ondemand=10**6, ondemand_capacity=1,
            v_static=0, static_capacity=100,
            v_total=10**6, dataset_bytes=1000,
        )
        assert d.repartition
        assert d.shrink_bytes <= 100

    def test_zero_static_capacity_no_op(self):
        d = check_repartition(200, 100, 0, 0, 200, 1000)
        assert not d.repartition

    def test_invalid(self):
        with pytest.raises(ValueError):
            check_repartition(-1, 10, 0, 10, 0, 100)
        with pytest.raises(ValueError):
            check_repartition(1, 10, 0, 10, 0, 0)

    @given(
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(1, 10**6),
        st.integers(1, 10**7),
    )
    def test_property_shrink_bounded(self, vod, cap, vstatic, mstatic, d):
        dec = check_repartition(vod, cap, vstatic, mstatic, vod + vstatic, d)
        assert 0 <= dec.shrink_bytes <= mstatic
