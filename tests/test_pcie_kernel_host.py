"""Tests for the PCIe, kernel, and host-gather cost models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.host import HostGather
from repro.gpusim.kernel import KernelModel
from repro.gpusim.pcie import PCIeLink


class TestPCIe:
    def test_zero_transfer_free(self):
        assert PCIeLink().transfer_seconds(0) == 0.0
        assert PCIeLink().payload_bytes(0) == 0

    def test_burst_rounding(self):
        link = PCIeLink(burst=16 * 1024)
        assert link.payload_bytes(1) == 16 * 1024
        assert link.payload_bytes(16 * 1024) == 16 * 1024
        assert link.payload_bytes(16 * 1024 + 1) == 32 * 1024

    def test_transfer_time_composition(self):
        link = PCIeLink(bandwidth=1e9, latency=1e-5, burst=1024)
        t = link.transfer_seconds(1024 * 1000)
        assert t == pytest.approx(1e-5 + 1024 * 1000 / 1e9)

    def test_latency_dominates_small(self):
        link = PCIeLink()
        small = link.transfer_seconds(64)
        assert small >= link.latency

    def test_streaming_single_latency(self):
        link = PCIeLink(bandwidth=1e9, latency=1e-5, burst=1024)
        t1 = link.streaming_seconds(10 * 1024, n_requests=1)
        t10 = link.streaming_seconds(10 * 1024, n_requests=10)
        assert t1 == t10  # queued requests pipeline their latencies

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PCIeLink(bandwidth=0)
        with pytest.raises(ValueError):
            PCIeLink(latency=-1)
        with pytest.raises(ValueError):
            PCIeLink(burst=0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIeLink().transfer_seconds(-1)

    @given(st.integers(0, 10**9))
    def test_property_payload_geq_bytes(self, n):
        link = PCIeLink()
        assert link.payload_bytes(n) >= n
        assert link.payload_bytes(n) - n < link.burst


class TestDirectAccess:
    """The zero-copy path: sector-granular, setup-free, half bandwidth."""

    def test_zero_free(self):
        link = PCIeLink()
        assert link.direct_access_seconds(0) == 0.0
        assert link.direct_payload_bytes(0) == 0

    def test_sector_rounding(self):
        link = PCIeLink(sector=128)
        assert link.direct_payload_bytes(1) == 128
        assert link.direct_payload_bytes(128) == 128
        assert link.direct_payload_bytes(129) == 256

    def test_no_burst_amplification(self):
        # The whole point of the path: a tiny read moves one sector, not
        # one DMA burst.
        link = PCIeLink()
        assert link.direct_payload_bytes(64) < link.payload_bytes(64)

    def test_time_composition(self):
        link = PCIeLink(direct_bandwidth=1e9, direct_latency=1e-8, sector=128)
        t = link.direct_access_seconds(256, n_accesses=2)
        assert t == pytest.approx(2 * 1e-8 + 256 / 1e9)

    def test_invalid(self):
        with pytest.raises(ValueError):
            PCIeLink(direct_bandwidth=0)
        with pytest.raises(ValueError):
            PCIeLink(direct_latency=-1)
        with pytest.raises(ValueError):
            PCIeLink(sector=0)
        with pytest.raises(ValueError):
            PCIeLink().direct_access_seconds(-1)
        with pytest.raises(ValueError):
            PCIeLink().direct_access_seconds(128, n_accesses=0)

    @given(st.integers(0, 10**8))
    def test_property_monotone_in_bytes(self, n):
        link = PCIeLink()
        assert (link.direct_access_seconds(n + 1)
                >= link.direct_access_seconds(n))
        assert link.direct_payload_bytes(n) >= n
        assert link.direct_payload_bytes(n) - n < link.sector

    @given(st.integers(1, 10**8), st.integers(1, 10**6))
    def test_property_monotone_in_accesses(self, n, a):
        link = PCIeLink()
        assert (link.direct_access_seconds(n, a + 1)
                >= link.direct_access_seconds(n, a))

    @given(st.integers(1, 32 * 1024))
    def test_property_direct_wins_below_crossover(self, n):
        # One access per touched sector (the policy's charging convention):
        # small sparse footprints are the EMOGI regime, well under the
        # ~50 KB crossover at the default constants.
        link = PCIeLink()
        accesses = -(-n // link.sector)
        assert (link.direct_access_seconds(n, accesses)
                < link.transfer_seconds(n))

    @given(st.integers(128 * 1024, 10**8))
    def test_property_bulk_wins_above_crossover(self, n):
        # Large footprints: direct access's halved bandwidth dominates and
        # one explicit DMA is cheaper — the regime where migration wins.
        link = PCIeLink()
        accesses = -(-n // link.sector)
        assert (link.direct_access_seconds(n, accesses)
                > link.transfer_seconds(n))


class TestKernelModel:
    def test_zero_edges_free(self):
        assert KernelModel().edge_kernel_seconds(0) == 0.0

    def test_launch_overhead_included(self):
        k = KernelModel(launch_overhead=1e-5)
        assert k.edge_kernel_seconds(1) >= 1e-5

    def test_atomics_penalty(self):
        k = KernelModel(atomic_penalty=2.0)
        plain = k.edge_kernel_seconds(10**6)
        atomic = k.edge_kernel_seconds(10**6, atomics=True)
        assert atomic > plain
        assert (atomic - k.launch_overhead) == pytest.approx(
            2.0 * (plain - k.launch_overhead)
        )

    def test_vertex_scan_passes(self):
        k = KernelModel()
        one = k.vertex_scan_seconds(10**6, passes=1)
        two = k.vertex_scan_seconds(10**6, passes=2)
        assert two > one

    def test_zero_scan_free(self):
        assert KernelModel().vertex_scan_seconds(0) == 0.0
        assert KernelModel().vertex_scan_seconds(100, passes=0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            KernelModel(edge_throughput=0)
        with pytest.raises(ValueError):
            KernelModel(atomic_penalty=0.5)
        with pytest.raises(ValueError):
            KernelModel().edge_kernel_seconds(-1)

    @given(st.integers(0, 10**10))
    def test_property_monotone(self, n):
        k = KernelModel()
        assert k.edge_kernel_seconds(n + 1) >= k.edge_kernel_seconds(n)


class TestHostGather:
    def test_zero_free(self):
        assert HostGather().gather_seconds(0) == 0.0

    def test_setup_plus_stream(self):
        g = HostGather(bandwidth=1e9, setup=1e-4)
        assert g.gather_seconds(10**9) == pytest.approx(1e-4 + 1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            HostGather(bandwidth=0)
        with pytest.raises(ValueError):
            HostGather().gather_seconds(-5)
