"""Tests for the engine variants: double-buffered PT and pipelined Subway."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.algorithms.validate import reference_cc_labels
from repro.engines.partition_based import PartitionEngine
from repro.engines.subway import SubwayEngine
from repro.graph.properties import best_source

from conftest import TEST_SCALE, make_spec_for


class TestDoubleBufferedPT:
    def test_same_values(self, small_social):
        spec = make_spec_for(small_social)
        a = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        b = PartitionEngine(spec=spec, data_scale=TEST_SCALE, double_buffer=True).run(
            small_social, make_program("CC")
        )
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.values, reference_cc_labels(small_social))

    def test_not_slower(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        single = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        double = PartitionEngine(
            spec=spec, data_scale=TEST_SCALE, double_buffer=True
        ).run(small_social, make_program("CC"))
        assert double.elapsed_seconds <= single.elapsed_seconds
        # Pipelining hides transfer behind compute: less GPU idle.
        assert double.gpu_idle_fraction <= single.gpu_idle_fraction

    def test_same_bytes_moved(self, small_social):
        """Double buffering changes *when*, never *what* moves — apart from
        smaller partitions rounding to more bursts."""
        spec = make_spec_for(small_social, edge_fraction=0.4)
        single = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        double = PartitionEngine(
            spec=spec, data_scale=TEST_SCALE, double_buffer=True
        ).run(small_social, make_program("CC"))
        assert double.metrics.bytes_h2d == pytest.approx(
            single.metrics.bytes_h2d, rel=0.02
        )

    def test_halves_partitions(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        single = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        double = PartitionEngine(
            spec=spec, data_scale=TEST_SCALE, double_buffer=True
        ).run(small_social, make_program("CC"))
        assert double.extra["n_partitions"] >= 2 * single.extra["n_partitions"] - 1


class TestPipelinedSubway:
    def test_same_values(self, small_social):
        spec = make_spec_for(small_social)
        src = best_source(small_social)
        a = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("BFS", source=src)
        )
        b = SubwayEngine(spec=spec, data_scale=TEST_SCALE, pipelined=True).run(
            small_social, make_program("BFS", source=src)
        )
        assert np.array_equal(a.values, b.values)

    def test_faster_on_dense_frontiers(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.3)
        seq = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        pipe = SubwayEngine(spec=spec, data_scale=TEST_SCALE, pipelined=True).run(
            small_social, make_program("CC")
        )
        assert pipe.elapsed_seconds < seq.elapsed_seconds

    def test_ascetic_still_ahead(self, small_social):
        """The ablation's point: pipelining alone does not close the gap —
        the Static Region's avoided transfers are the bigger lever."""
        from repro.core.ascetic import AsceticEngine

        spec = make_spec_for(small_social, edge_fraction=0.3)
        pipe = SubwayEngine(spec=spec, data_scale=TEST_SCALE, pipelined=True).run(
            small_social, make_program("CC")
        )
        asc = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        assert asc.elapsed_seconds < pipe.elapsed_seconds


class TestPinnedPartitionPT:
    """Fig. 1's "Partition + Reuse" row — the paper's §1 motivating hack."""

    def test_reduces_transfer(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        base = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        pinned = PartitionEngine(
            spec=spec, data_scale=TEST_SCALE, pinned_partitions=1
        ).run(small_social, make_program("CC"))
        # §1: pinning one partition cut PR/FK transfer by 26 %.
        assert pinned.metrics.bytes_h2d < 0.9 * base.metrics.bytes_h2d

    def test_same_values(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        base = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        pinned = PartitionEngine(
            spec=spec, data_scale=TEST_SCALE, pinned_partitions=2
        ).run(small_social, make_program("CC"))
        assert np.array_equal(base.values, pinned.values)

    def test_invalid_count(self):
        import pytest

        with pytest.raises(ValueError):
            PartitionEngine(pinned_partitions=-1)

    def test_still_worse_than_ascetic(self, small_social):
        """The §1 hack helps, but the full framework (right-sized regions,
        fine-grained on-demand fetch, overlap) is what gets the 2×."""
        from repro.core.ascetic import AsceticEngine

        spec = make_spec_for(small_social, edge_fraction=0.4)
        pinned = PartitionEngine(
            spec=spec, data_scale=TEST_SCALE, pinned_partitions=1
        ).run(small_social, make_program("CC"))
        asc = AsceticEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, make_program("CC")
        )
        assert asc.elapsed_seconds < pinned.elapsed_seconds
