"""Batched-traversal fusion: B=1 bit-parity and multi-source row parity."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.serve.batching import BatchedBFS, BatchedSSSP, make_batched

from conftest import make_spec_for


def drive(program, graph):
    """Run a program's superstep loop to quiescence (no engine)."""
    state = program.init_state(graph)
    while state.active.any() and not program.done(state):
        program.step(graph, state)
    return state


class TestFactory:
    def test_make_batched_dispatch(self):
        assert isinstance(make_batched("bfs", [0]), BatchedBFS)
        assert isinstance(make_batched("SSSP", [0, 1]), BatchedSSSP)
        with pytest.raises(ValueError):
            make_batched("CC", [0])
        with pytest.raises(ValueError):
            make_batched("BFS", [])

    def test_name_carries_batch_size(self):
        assert make_batched("BFS", [0, 3, 5]).name == "BFSx3"
        assert make_batched("SSSP", [2]).batch_size == 1

    def test_source_range_checked(self, tiny_path):
        with pytest.raises(ValueError):
            drive(BatchedBFS([99]), tiny_path)


class TestSingleSourceParity:
    """With B == 1 every array equals the single-source program's."""

    def test_bfs_bit_parity(self, small_web):
        src = 7
        ref = make_program("BFS", source=src)
        ref_state = drive(ref, small_web)
        batched = BatchedBFS([src])
        b_state = drive(batched, small_web)
        assert np.array_equal(batched.values(b_state)[0],
                              ref.values(ref_state))
        assert b_state.iteration == ref_state.iteration
        assert b_state.edges_relaxed == ref_state.edges_relaxed

    def test_sssp_bit_parity(self, small_web):
        g = small_web.with_random_weights(high=3)
        src = 7
        ref = make_program("SSSP", source=src)
        ref_state = drive(ref, g)
        batched = BatchedSSSP([src])
        b_state = drive(batched, g)
        assert np.array_equal(batched.values(b_state)[0],
                              ref.values(ref_state))
        assert b_state.iteration == ref_state.iteration
        assert b_state.edges_relaxed == ref_state.edges_relaxed


class TestMultiSourceParity:
    """Row i of a fused run equals an independent run from sources[i]."""

    def test_bfs_rows_match_independent_runs(self, small_web):
        sources = [7, 0, 113]
        batched = BatchedBFS(sources)
        b_state = drive(batched, small_web)
        values = batched.values(b_state)
        assert values.shape == (3, small_web.n_vertices)
        for row, src in enumerate(sources):
            ref = make_program("BFS", source=src)
            assert np.array_equal(values[row], ref.values(drive(ref, small_web)))

    def test_sssp_rows_match_independent_runs(self, small_web):
        g = small_web.with_random_weights(high=3)
        sources = [7, 113]
        batched = BatchedSSSP(sources)
        b_state = drive(batched, g)
        values = batched.values(b_state)
        for row, src in enumerate(sources):
            ref = make_program("SSSP", source=src)
            assert np.array_equal(values[row], ref.values(drive(ref, g)))

    def test_union_edges_charged_once(self, small_web):
        # The fused run reads at most the sum of the individual runs'
        # edges, and at least the largest individual run's (union effect).
        sources = [7, 113]
        per_source = []
        for src in sources:
            ref = make_program("BFS", source=src)
            st = drive(ref, small_web)
            per_source.append(st.edges_relaxed)
        fused = drive(BatchedBFS(sources), small_web)
        assert fused.edges_relaxed <= sum(per_source)
        assert fused.edges_relaxed >= max(per_source)


class TestUnderEngines:
    def test_batched_bfs_runs_under_ascetic(self, small_web):
        from repro.core.ascetic import AsceticEngine

        sources = [7, 113]
        spec = make_spec_for(small_web)
        engine = AsceticEngine(spec=spec, data_scale=1e-2)
        result = engine.run(small_web, BatchedBFS(sources))
        for row, src in enumerate(sources):
            ref = make_program("BFS", source=src)
            assert np.array_equal(result.values[row],
                                  ref.values(drive(ref, small_web)))
        assert result.elapsed_seconds > 0
