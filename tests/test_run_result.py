"""Tests for RunResult reporting semantics."""

import numpy as np
import pytest

from repro.engines.base import IterationRecord, RunResult
from repro.gpusim.metrics import Metrics


def make_result(**overrides):
    base = dict(
        engine="Ascetic",
        algorithm="BFS",
        graph_name="FK",
        values=np.arange(4),
        iterations=3,
        elapsed_seconds=1.5,
        metrics=Metrics(),
        gpu_idle_fraction=0.25,
    )
    base.update(overrides)
    return RunResult(**base)


class TestRunResult:
    def test_bytes_h2d_passthrough(self):
        m = Metrics()
        m.bytes_h2d = 1234
        assert make_result(metrics=m).bytes_h2d == 1234

    def test_processing_excludes_prefill(self):
        m = Metrics()
        m.bytes_h2d = 1000
        r = make_result(metrics=m)
        r.extra["static_prefill_bytes"] = 400.0
        assert r.processing_bytes_h2d == 600.0

    def test_processing_equals_total_without_prefill(self):
        m = Metrics()
        m.bytes_h2d = 1000
        assert make_result(metrics=m).processing_bytes_h2d == 1000

    def test_transfer_over_dataset(self):
        m = Metrics()
        m.bytes_h2d = 500
        r = make_result(metrics=m)
        r.extra["dataset_bytes"] = 250.0
        assert r.transfer_over_dataset == 2.0

    def test_transfer_over_dataset_nan_without_size(self):
        assert np.isnan(make_result().transfer_over_dataset)

    def test_summary_contains_key_fields(self):
        s = make_result().summary()
        for token in ("Ascetic", "BFS", "FK", "iters=3"):
            assert token in s

    def test_iteration_record_duration(self):
        rec = IterationRecord(
            iteration=0, n_active_vertices=5, n_active_edges=9,
            bytes_h2d=100, t_start=1.0, t_end=3.5,
        )
        assert rec.duration == 2.5
