"""Tests for k-core decomposition."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import KCore, make_program
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi_graph, grid_graph


def simple_undirected(n, m, seed):
    """A deduplicated, loop-free undirected graph (networkx-comparable)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    return CSRGraph.from_edges(src[keep], dst[keep], n, directed=False, dedup=True)


class TestKCore:
    def test_registered(self):
        assert make_program("KCORE").name == "KCORE"

    def test_rejects_directed(self, tiny_path):
        with pytest.raises(ValueError):
            KCore().run_reference(tiny_path)

    def test_triangle_with_tail(self):
        g = CSRGraph.from_edges([0, 1, 2, 2], [1, 2, 0, 3], 4,
                                directed=False, dedup=True)
        core = KCore().run_reference(g)
        assert list(core) == [2, 2, 2, 1]

    def test_isolated_vertices_core_zero(self):
        g = CSRGraph.from_edges([0], [1], 4, directed=False)
        core = KCore().run_reference(g)
        assert core[2] == 0 and core[3] == 0

    def test_grid_against_networkx(self, tiny_grid):
        core = KCore().run_reference(tiny_grid)
        ref = nx.core_number(tiny_grid.to_networkx())
        assert all(core[v] == ref[v] for v in range(tiny_grid.n_vertices))

    def test_clique_core(self):
        g = complete_graph(6, directed=False)
        # complete_graph(directed=False) doubles arcs; dedup to a simple clique.
        g = CSRGraph.from_edges(
            g.edge_sources(), g.indices, 6, directed=True, dedup=True
        )
        g.directed = False
        core = KCore().run_reference(g)
        assert np.all(core == 5)

    @given(st.integers(0, 500))
    @settings(max_examples=15)
    def test_property_matches_networkx(self, seed):
        g = simple_undirected(30, 90, seed)
        core = KCore().run_reference(g)
        ref = nx.core_number(g.to_networkx())
        for v in range(g.n_vertices):
            assert core[v] == ref.get(v, 0), v

    @given(st.integers(0, 500))
    @settings(max_examples=10)
    def test_property_core_invariants(self, seed):
        g = simple_undirected(25, 60, seed)
        core = KCore().run_reference(g)
        deg = g.out_degree()
        # Coreness never exceeds degree; max coreness subgraph is non-empty.
        assert np.all(core <= deg)
        if g.n_edges:
            kmax = core.max()
            members = np.nonzero(core == kmax)[0]
            assert members.size >= kmax + 1 or kmax == 0

    def test_runs_under_engines(self, small_social):
        from conftest import TEST_SCALE, make_spec_for
        from repro.core.ascetic import AsceticEngine
        from repro.engines.subway import SubwayEngine

        ref = KCore().run_reference(small_social)
        spec = make_spec_for(small_social)
        for cls in (SubwayEngine, AsceticEngine):
            res = cls(spec=spec, data_scale=TEST_SCALE).run(
                small_social, make_program("KCORE")
            )
            assert np.array_equal(res.values, ref), cls.name

    def test_multiplicity_semantics_documented(self):
        """Parallel edges count toward degree (multigraph k-core) — the CSR
        stores what it is given."""
        g = CSRGraph.from_edges([0, 0, 1], [1, 1, 2], 3, directed=False)
        core = KCore().run_reference(g)
        # Vertex 0 and 1 share a double edge: both survive k=2 peeling.
        assert core[0] == 2 and core[1] == 2 and core[2] == 1
