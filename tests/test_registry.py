"""Tests for the engine registry and its legacy ``ENGINES`` view."""

import pytest

from repro.core.ascetic import AsceticEngine
from repro.engines import registry
from repro.engines.base import Engine
from repro.gpusim.device import GPUSpec
from repro.harness.experiments import ENGINES


class _FakeEngine:
    """Minimal engine-shaped object for registration tests."""

    name = "Fake"

    def __init__(self, spec=None, data_scale=1.0, **kwargs):
        self.spec = spec
        self.kwargs = kwargs

    def run(self, graph, program):  # pragma: no cover - never exercised
        raise NotImplementedError


@pytest.fixture
def fake_engine():
    registry.register("Fake", _FakeEngine)
    yield _FakeEngine
    registry.unregister("Fake")


class TestRegistry:
    def test_builtins_present_in_paper_order(self):
        names = registry.available()
        assert names[:4] == ("PT", "UVM", "Subway", "Ascetic")

    def test_get_and_create(self):
        assert registry.get("Ascetic") is AsceticEngine
        engine = registry.create("Subway", spec=GPUSpec(memory_bytes=1 << 20))
        assert isinstance(engine, Engine)
        assert engine.name == "Subway"

    def test_unknown_engine_raises_with_candidates(self):
        with pytest.raises(KeyError, match="Ascetic"):
            registry.get("CUDA")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("Ascetic", AsceticEngine)

    def test_replace_allows_override(self, fake_engine):
        registry.register("Fake", fake_engine, replace=True)
        assert registry.get("Fake") is fake_engine

    def test_register_validates(self):
        with pytest.raises(ValueError):
            registry.register("", _FakeEngine)
        with pytest.raises(TypeError):
            registry.register("NotCallable", 42)

    def test_unregister(self):
        registry.register("Temp", _FakeEngine)
        registry.unregister("Temp")
        assert not registry.is_registered("Temp")
        with pytest.raises(KeyError):
            registry.unregister("Temp")


class TestEnginesView:
    def test_view_tracks_registry(self, fake_engine):
        assert "Fake" in ENGINES
        assert ENGINES["Fake"] is fake_engine
        assert set(ENGINES) == set(registry.available())
        assert len(ENGINES) == len(registry.available())

    def test_view_after_unregister(self):
        assert "Fake" not in ENGINES

    def test_view_is_read_only(self):
        with pytest.raises(TypeError):
            ENGINES["PT"] = _FakeEngine  # Mapping, not MutableMapping

    def test_cli_choices_follow_registry(self, fake_engine):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--dataset", "FK", "--algo", "BFS", "--engine", "Fake"]
        )
        assert args.engine == "Fake"
