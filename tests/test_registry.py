"""Tests for the engine registry and its legacy ``ENGINES`` view."""

import pytest

from repro.core.ascetic import AsceticEngine
from repro.engines import registry
from repro.engines.base import Engine
from repro.gpusim.device import GPUSpec
from repro.harness.experiments import ENGINES


class _FakeEngine:
    """Minimal engine-shaped object for registration tests."""

    name = "Fake"

    def __init__(self, spec=None, data_scale=1.0, **kwargs):
        self.spec = spec
        self.kwargs = kwargs

    def run(self, graph, program):  # pragma: no cover - never exercised
        raise NotImplementedError


@pytest.fixture
def fake_engine():
    registry.register("Fake", _FakeEngine)
    yield _FakeEngine
    registry.unregister("Fake")


class TestRegistry:
    def test_builtins_present_in_paper_order(self):
        names = registry.available()
        assert names[:4] == ("PT", "UVM", "Subway", "Ascetic")

    def test_get_and_create(self):
        assert registry.get("Ascetic") is AsceticEngine
        engine = registry.create("Subway", spec=GPUSpec(memory_bytes=1 << 20))
        assert isinstance(engine, Engine)
        assert engine.name == "Subway"

    def test_unknown_engine_raises_with_candidates(self):
        with pytest.raises(KeyError, match="Ascetic"):
            registry.get("CUDA")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("Ascetic", AsceticEngine)

    def test_replace_allows_override(self, fake_engine):
        registry.register("Fake", fake_engine, replace=True)
        assert registry.get("Fake") is fake_engine

    def test_register_validates(self):
        with pytest.raises(ValueError):
            registry.register("", _FakeEngine)
        with pytest.raises(TypeError):
            registry.register("NotCallable", 42)

    def test_unregister(self):
        registry.register("Temp", _FakeEngine)
        registry.unregister("Temp")
        assert not registry.is_registered("Temp")
        with pytest.raises(KeyError):
            registry.unregister("Temp")


class TestEngineInfo:
    def test_every_builtin_has_metadata(self):
        for name in registry.available():
            info = registry.describe(name)
            assert info.description
            assert info.transfer_policy
            assert info.supported_engine_opts is not None

    def test_warm_start_capability_flags(self):
        assert registry.describe("Ascetic").supports_warm_start
        assert registry.describe("Hybrid").supports_warm_start
        for name in ("PT", "UVM", "Subway"):
            assert not registry.describe(name).supports_warm_start

    def test_describe_unknown_matches_get(self):
        with pytest.raises(KeyError, match="registered engines"):
            registry.describe("CUDA")

    def test_all_opts_extends_the_common_set(self):
        info = registry.describe("Hybrid")
        assert set(registry.COMMON_ENGINE_OPTS) <= set(info.all_opts)
        assert "cache_fraction" in info.all_opts

    def test_create_rejects_unknown_option(self):
        with pytest.raises(TypeError, match=r"'Ascetic'.*'bogus'"):
            registry.create("Ascetic", bogus=1)

    def test_create_error_lists_accepted_options(self):
        # A typo'd option fails fast and tells you what would have worked.
        with pytest.raises(TypeError, match="cache_fraction"):
            registry.create("Hybrid", cache_fractoin=0.5)

    def test_create_accepts_declared_options(self):
        eng = registry.create("Hybrid", spec=GPUSpec(memory_bytes=1 << 20),
                              cache_fraction=0.5)
        assert eng.cache_fraction == 0.5

    def test_unregister_unknown_matches_get_style(self):
        with pytest.raises(KeyError, match="registered engines"):
            registry.unregister("CUDA")

    def test_infoless_registration_is_unvalidated(self, fake_engine):
        # Back-compat: third-party engines registered without EngineInfo
        # keep working — default metadata, no option validation.
        info = registry.describe("Fake")
        assert not info.supports_warm_start
        assert info.supported_engine_opts is None
        assert info.all_opts is None
        eng = registry.create("Fake", anything_goes=1)
        assert eng.kwargs == {"anything_goes": 1}

    def test_register_with_info_validates(self):
        info = registry.EngineInfo(description="test engine",
                                   supported_engine_opts=("knob",))
        registry.register("Temp", _FakeEngine, info=info)
        try:
            assert registry.describe("Temp") == info
            assert registry.create("Temp", knob=2).kwargs == {"knob": 2}
            with pytest.raises(TypeError, match="knob"):
                registry.create("Temp", dial=3)
        finally:
            registry.unregister("Temp")

    def test_replace_without_info_clears_metadata(self):
        info = registry.EngineInfo(supported_engine_opts=("knob",))
        registry.register("Temp", _FakeEngine, info=info)
        try:
            registry.register("Temp", _FakeEngine, replace=True)
            assert registry.describe("Temp").all_opts is None
        finally:
            registry.unregister("Temp")


class TestEnginesView:
    def test_view_tracks_registry(self, fake_engine):
        assert "Fake" in ENGINES
        assert ENGINES["Fake"] is fake_engine
        assert set(ENGINES) == set(registry.available())
        assert len(ENGINES) == len(registry.available())

    def test_view_after_unregister(self):
        assert "Fake" not in ENGINES

    def test_view_is_read_only(self):
        with pytest.raises(TypeError):
            ENGINES["PT"] = _FakeEngine  # Mapping, not MutableMapping

    def test_cli_choices_follow_registry(self, fake_engine):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--dataset", "FK", "--algo", "BFS", "--engine", "Fake"]
        )
        assert args.engine == "Fake"
