"""Serving-layer unit tests: requests, admission queue, schedulers."""

import pytest

from repro.serve import (
    AdmissionQueue,
    AffinityScheduler,
    FifoScheduler,
    QUEUE_POLICIES,
    engine_key,
    generate_requests,
    make_scheduler,
    variant_for,
)
from repro.serve.request import Request


def req(rid, tenant="t0", graph="GS", algo="BFS", arrival=0.0,
        priority=0, deadline=None, sources=None):
    return Request(request_id=rid, tenant=tenant, graph_id=graph,
                   algorithm=algo, arrival=arrival, priority=priority,
                   deadline=deadline, sources=sources)


class TestRequestModel:
    def test_variants_share_and_split_warmth(self):
        # BFS/CC/PR stream the same plain CSR: warmth transfers.
        assert variant_for("BFS") == variant_for("CC") == variant_for("PR")
        # SSSP/KCORE/PR-PULL each need different bytes.
        assert variant_for("SSSP") == "weighted"
        assert variant_for("KCORE") == "sym"
        assert variant_for("PR-PULL") == "rev"
        with pytest.raises(ValueError):
            variant_for("DFS")

    def test_engine_key_pairs_graph_and_variant(self):
        assert engine_key(req(0, graph="FK", algo="cc")) == ("FK", "plain")
        assert engine_key(req(1, graph="FK", algo="SSSP")) == ("FK", "weighted")

    def test_expired_is_inclusive(self):
        r = req(0, arrival=1.0, deadline=5.0)
        assert not r.expired(4.999)
        assert r.expired(5.0)
        assert not req(1).expired(1e9)  # best-effort never expires

    def test_generator_is_a_pure_function_of_its_arguments(self):
        kw = dict(n_requests=20, seed=9, arrival_rate=2.0,
                  graphs=("GS", "FK"), algorithms=("BFS", "SSSP"),
                  tenants=("a", "b"), priorities=(0, 1), deadline=10.0,
                  multi_source=3)
        a = generate_requests(**kw)
        b = generate_requests(**kw)
        assert a == b
        assert a != generate_requests(**{**kw, "seed": 10})

    def test_generator_trace_shape(self):
        trace = generate_requests(n_requests=30, seed=3, arrival_rate=5.0,
                                  graphs=("GS",), algorithms=("BFS", "CC"),
                                  deadline=4.0, multi_source=2)
        arrivals = [r.arrival for r in trace]
        assert arrivals == sorted(arrivals) and arrivals[0] > 0.0
        for r in trace:
            assert r.deadline == pytest.approx(r.arrival + 4.0)
            if r.algorithm == "BFS":
                assert r.sources is not None and len(r.sources) == 2
            else:  # CC is not batchable: no explicit sources drawn
                assert r.sources is None

    def test_generator_validates_inputs(self):
        with pytest.raises(ValueError):
            generate_requests(5, seed=0, arrival_rate=0.0,
                              graphs=("GS",), algorithms=("BFS",))
        with pytest.raises(ValueError):
            generate_requests(5, seed=0, arrival_rate=1.0,
                              graphs=(), algorithms=("BFS",))
        with pytest.raises(ValueError):
            generate_requests(5, seed=0, arrival_rate=1.0,
                              graphs=("GS",), algorithms=("DFS",))


class TestAdmissionQueue:
    def test_reject_policy_sheds_the_newcomer(self):
        q = AdmissionQueue(capacity=2, policy="reject")
        assert q.offer(req(0), 0.0) == (True, [])
        assert q.offer(req(1), 0.0) == (True, [])
        admitted, shed = q.offer(req(2), 0.0)
        assert not admitted
        assert [(v.request_id, why) for v, why in shed] == [(2, "queue-full")]
        assert [r.request_id for r in q.items] == [0, 1]

    def test_zero_capacity_queue_sheds_everything(self):
        for policy in QUEUE_POLICIES:
            q = AdmissionQueue(capacity=0, policy=policy)
            for rid in range(3):
                admitted, shed = q.offer(req(rid, deadline=100.0), 0.0)
                assert not admitted
                assert shed[-1][1] == "queue-full"
            assert len(q) == 0 and not q
            assert q.account("t0").shed == 3

    def test_drop_oldest_charges_the_heaviest_tenant(self):
        q = AdmissionQueue(capacity=3, policy="drop-oldest")
        q.offer(req(0, tenant="flood"), 0.0)
        q.offer(req(1, tenant="flood"), 0.0)
        q.offer(req(2, tenant="light"), 0.0)
        admitted, shed = q.offer(req(3, tenant="light"), 1.0)
        assert admitted
        # flood has 2 queued vs light's 1: flood's oldest (id 0) pays.
        assert [(v.request_id, why) for v, why in shed] == [(0, "drop-oldest")]
        assert [r.request_id for r in q.items] == [1, 2, 3]
        assert q.account("flood").shed == 1
        assert q.account("light").shed == 0

    def test_deadline_policy_purges_expired_first(self):
        q = AdmissionQueue(capacity=2, policy="deadline")
        q.offer(req(0, deadline=1.0), 0.0)
        q.offer(req(1, deadline=100.0), 0.0)
        admitted, shed = q.offer(req(2, deadline=100.0), 5.0)
        assert admitted
        assert [(v.request_id, why) for v, why in shed] == [
            (0, "deadline-in-queue")]

    def test_expired_at_admission_shed_under_every_policy(self):
        for policy in QUEUE_POLICIES:
            q = AdmissionQueue(capacity=8, policy=policy)
            admitted, shed = q.offer(req(0, arrival=5.0, deadline=5.0), 5.0)
            assert not admitted
            assert shed == [(shed[0][0], "deadline-at-admission")]
            assert len(q) == 0

    def test_purge_expired_while_queued(self):
        q = AdmissionQueue(capacity=8, policy="reject")
        q.offer(req(0, deadline=2.0), 0.0)
        q.offer(req(1, deadline=9.0), 0.0)
        q.offer(req(2), 0.0)
        purged = q.purge_expired(3.0)
        assert [(v.request_id, why) for v, why in purged] == [
            (0, "deadline-in-queue")]
        assert [r.request_id for r in q.items] == [1, 2]

    def test_tenant_ledger_balances(self):
        q = AdmissionQueue(capacity=1, policy="reject")
        q.offer(req(0, tenant="a"), 0.0)
        q.offer(req(1, tenant="a"), 0.0)   # shed: full
        q.take(q.items[0])
        q.note_completed(req(0, tenant="a"), 3.5)
        acct = q.account("a")
        assert acct.submitted == acct.admitted + acct.shed == 2
        assert acct.completed == 1
        assert acct.service_seconds == pytest.approx(3.5)
        assert set(acct.as_dict()) == {"submitted", "admitted", "shed",
                                       "completed", "service_seconds"}

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=-1)
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=4, policy="lifo")


class TestSchedulers:
    def test_fifo_orders_by_priority_then_arrival_then_id(self):
        items = [req(2, arrival=1.0), req(0, arrival=2.0, priority=1),
                 req(1, arrival=1.0)]
        sched = FifoScheduler()
        assert sched.select(items, now=5.0)[0].request_id == 0  # priority wins
        items = [req(2, arrival=1.0), req(1, arrival=1.0)]
        assert sched.select(items, now=5.0)[0].request_id == 1  # id tiebreak
        assert sched.select([], now=0.0) == ()

    def test_affinity_prefers_warm_keys(self):
        items = [req(0, graph="GS", algo="BFS", arrival=0.0),
                 req(1, graph="FK", algo="BFS", arrival=1.0)]
        sched = AffinityScheduler()
        picked = sched.select(items, now=2.0, warm_keys=[("FK", "plain")])
        assert picked[0].request_id == 1
        # No warm key queued: falls back to the head of line.
        picked = sched.select(items, now=2.0, warm_keys=[("UK", "plain")])
        assert picked[0].request_id == 0

    def test_affinity_aging_guard_beats_warmth(self):
        items = [req(0, graph="GS", arrival=0.0),
                 req(1, graph="FK", arrival=99.0)]
        sched = AffinityScheduler(aging_seconds=10.0)
        # Head has waited 100 s > 10 s: dispatched despite FK being warm.
        picked = sched.select(items, now=100.0, warm_keys=[("FK", "plain")])
        assert picked[0].request_id == 0

    def test_batching_fuses_same_key_same_algorithm(self):
        items = [req(0, algo="BFS", arrival=0.0),
                 req(1, algo="BFS", arrival=1.0),
                 req(2, algo="CC", arrival=0.5),           # same key, not batchable
                 req(3, algo="BFS", graph="FK", arrival=0.2),  # other key
                 req(4, algo="BFS", arrival=2.0)]
        sched = FifoScheduler(max_batch=3)
        batch = sched.select(items, now=3.0)
        assert [r.request_id for r in batch] == [0, 1, 4]

    def test_non_batchable_lead_dispatches_alone(self):
        items = [req(0, algo="CC", arrival=0.0), req(1, algo="CC", arrival=1.0)]
        batch = FifoScheduler(max_batch=4).select(items, now=2.0)
        assert [r.request_id for r in batch] == [0]

    def test_make_scheduler_and_validation(self):
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("affinity", max_batch=2),
                          AffinityScheduler)
        with pytest.raises(ValueError):
            make_scheduler("random")
        with pytest.raises(ValueError):
            FifoScheduler(max_batch=0)
        with pytest.raises(ValueError):
            AffinityScheduler(aging_seconds=0.0)
