"""Public-API hygiene: exports resolve, docstrings exist, imports are clean."""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.graph",
    "repro.graph.csr",
    "repro.graph.generators",
    "repro.graph.datasets",
    "repro.graph.io",
    "repro.graph.partition",
    "repro.graph.properties",
    "repro.graph.reorder",
    "repro.graph.subgraph",
    "repro.gpusim",
    "repro.gpusim.clock",
    "repro.gpusim.device",
    "repro.gpusim.events",
    "repro.gpusim.faults",
    "repro.gpusim.host",
    "repro.gpusim.kernel",
    "repro.gpusim.memory",
    "repro.gpusim.metrics",
    "repro.gpusim.pcie",
    "repro.gpusim.stream",
    "repro.gpusim.uvm",
    "repro.algorithms",
    "repro.algorithms.base",
    "repro.algorithms.frontier",
    "repro.algorithms.bfs",
    "repro.algorithms.sssp",
    "repro.algorithms.cc",
    "repro.algorithms.pagerank",
    "repro.algorithms.pagerank_pull",
    "repro.algorithms.sswp",
    "repro.algorithms.kcore",
    "repro.algorithms.validate",
    "repro.engines",
    "repro.engines.base",
    "repro.engines.hybrid",
    "repro.engines.partition_based",
    "repro.engines.registry",
    "repro.engines.subway",
    "repro.engines.uvm_engine",
    "repro.core",
    "repro.core.ascetic",
    "repro.core.bitmaps",
    "repro.core.manager",
    "repro.core.ondemand",
    "repro.core.ratio",
    "repro.core.replacement",
    "repro.core.static_region",
    "repro.analysis",
    "repro.analysis.traces",
    "repro.analysis.active_edges",
    "repro.analysis.memory_usage",
    "repro.analysis.breakdown",
    "repro.analysis.predict",
    "repro.analysis.reuse",
    "repro.analysis.report",
    "repro.harness",
    "repro.harness.checkpoint",
    "repro.harness.experiments",
    "repro.harness.sweeps",
    "repro.harness.persistence",
    "repro.runner",
    "repro.runner.spec",
    "repro.runner.cache",
    "repro.runner.executor",
    "repro.serve",
    "repro.serve.request",
    "repro.serve.queue",
    "repro.serve.scheduler",
    "repro.serve.pool",
    "repro.serve.batching",
    "repro.serve.slo",
    "repro.serve.simulator",
    "repro.bench",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_importable_with_docstring(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", MODULES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    """Every public class/function the module exports carries a docstring."""
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        obj = getattr(mod, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__.startswith("repro"):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{name}.{symbol} lacks a docstring"
                )


def test_version_exposed():
    import repro

    assert repro.__version__


def test_top_level_surface_pinned():
    """``repro.__all__`` is the stable public surface — change deliberately."""
    import repro

    assert set(repro.__all__) == {
        "CSRGraph",
        "load_dataset",
        "DATASETS",
        "GPUSpec",
        "SimulatedGPU",
        "Engine",
        "EngineInfo",
        "IterationRecord",
        "RunResult",
        "AccessPath",
        "TransferPolicy",
        "PartitionEngine",
        "UVMEngine",
        "SubwayEngine",
        "AsceticEngine",
        "AsceticConfig",
        "HybridEngine",
        "registry",
        "FaultPlan",
        "standard_plan",
        "RunSpec",
        "ResultCache",
        "GridReport",
        "run_grid",
        "serve",
        "__version__",
    }


def test_engines_package_exports_ascetic():
    """The engine surface is complete: baselines + the paper's engine."""
    import repro.engines as engines

    assert engines.AsceticEngine is engines.registry.get("Ascetic")
    for name in ("PT", "UVM", "Subway", "Ascetic", "Hybrid", "Sharded"):
        assert name in engines.registry.available()
