"""Unit and property tests for the CSR graph substrate."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.csr import (
    CSRGraph,
    EDGE_INDEX_BYTES,
    VERTEX_STATE_BYTES,
    WEIGHT_BYTES,
)

from conftest import assert_graph_valid


def edges_strategy(max_n=30, max_m=120):
    """Random edge lists as (n, src, dst) with valid ids."""
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_m,
            ),
        )
    )


class TestConstruction:
    def test_empty_graph(self):
        g = CSRGraph.from_edges([], [], 5)
        assert g.n_vertices == 5
        assert g.n_edges == 0
        assert g.neighbors(0).size == 0

    def test_zero_vertex_graph(self):
        g = CSRGraph.from_edges([], [], 0)
        assert g.n_vertices == 0
        assert g.n_edges == 0

    def test_simple_directed(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 2, 2], 3)
        assert g.n_edges == 3
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == []

    def test_undirected_materializes_both_arcs(self):
        g = CSRGraph.from_edges([0], [1], 2, directed=False)
        assert g.n_edges == 2
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]

    def test_self_loops_kept(self):
        g = CSRGraph.from_edges([0, 1], [0, 1], 2)
        assert g.n_edges == 2
        assert list(g.neighbors(0)) == [0]

    def test_parallel_edges_kept_by_default(self):
        g = CSRGraph.from_edges([0, 0], [1, 1], 2)
        assert g.n_edges == 2

    def test_dedup_removes_duplicates(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 1, 0], 2, dedup=True)
        assert g.n_edges == 2

    def test_dedup_keeps_first_weight(self):
        g = CSRGraph.from_edges([0, 0], [1, 1], 2, weights=[7, 9], dedup=True)
        assert g.n_edges == 1
        assert g.weights[0] == 7

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([0], [5], 3)

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([-1], [0], 3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([0, 1], [1], 3)

    def test_weights_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([0], [1], 2, weights=[1, 2])

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0], dtype=np.int32))

    def test_indptr_tail_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 5]), indices=np.array([0], dtype=np.int32))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(
                indptr=np.array([0, 2, 1, 3]),
                indices=np.array([0, 1, 2], dtype=np.int32),
            )

    @given(edges_strategy())
    def test_from_edges_roundtrip(self, data):
        n, pairs = data
        src = [p[0] for p in pairs]
        dst = [p[1] for p in pairs]
        g = CSRGraph.from_edges(src, dst, n)
        assert_graph_valid(g)
        # Multiset of edges is preserved.
        got = sorted(zip(g.edge_sources().tolist(), g.indices.tolist()))
        assert got == sorted(zip(src, dst))

    @given(edges_strategy())
    def test_undirected_symmetry(self, data):
        n, pairs = data
        src = [p[0] for p in pairs]
        dst = [p[1] for p in pairs]
        g = CSRGraph.from_edges(src, dst, n, directed=False)
        fwd = sorted(zip(g.edge_sources().tolist(), g.indices.tolist()))
        rev = sorted(zip(g.indices.tolist(), g.edge_sources().tolist()))
        assert fwd == rev


class TestSizing:
    def test_bytes_per_edge_unweighted(self, tiny_path):
        assert tiny_path.bytes_per_edge == EDGE_INDEX_BYTES

    def test_bytes_per_edge_weighted(self, tiny_path):
        g = tiny_path.with_random_weights()
        assert g.bytes_per_edge == EDGE_INDEX_BYTES + WEIGHT_BYTES

    def test_weights_double_edge_bytes(self, small_rmat):
        # §4.1: "the size of the edge data is doubled for SSSP".
        g = small_rmat.with_random_weights()
        assert g.edge_array_bytes == 2 * small_rmat.edge_array_bytes

    def test_dataset_bytes_composition(self, small_rmat):
        g = small_rmat
        assert g.dataset_bytes == (
            g.n_vertices * VERTEX_STATE_BYTES + g.n_edges * g.bytes_per_edge
        )

    def test_unweighted_strips_weights(self, tiny_path):
        g = tiny_path.with_random_weights().unweighted()
        assert not g.is_weighted


class TestNavigation:
    def test_out_degree(self, tiny_star):
        deg = tiny_star.out_degree()
        assert deg[0] == tiny_star.n_vertices - 1
        assert np.all(deg[1:] == 0)

    def test_out_degree_cached(self, tiny_star):
        assert tiny_star.out_degree() is tiny_star.out_degree()

    def test_neighbors_is_view(self, tiny_path):
        nb = tiny_path.neighbors(0)
        assert nb.base is tiny_path.indices

    def test_edge_range(self, tiny_path):
        lo, hi = tiny_path.edge_range(0, 3)
        assert (lo, hi) == (0, 3)

    def test_edge_weights_of_unweighted_raises(self, tiny_path):
        with pytest.raises(ValueError):
            tiny_path.edge_weights_of(0)

    def test_edge_sources_matches_indptr(self, small_rmat):
        src = small_rmat.edge_sources()
        assert src.size == small_rmat.n_edges
        for v in (0, small_rmat.n_vertices // 2):
            lo, hi = small_rmat.edge_range(v, v + 1)
            assert np.all(src[lo:hi] == v)


class TestTransforms:
    def test_reverse_roundtrip(self, small_web):
        # Double reversal preserves the edge multiset (intra-vertex edge
        # order may legitimately differ).
        rr = small_web.reverse().reverse()
        assert np.array_equal(rr.indptr, small_web.indptr)

        def canon(g):
            s, d = g.edge_sources(), g.indices.astype(np.int64)
            order = np.lexsort((d, s))
            return s[order], d[order]

        for a, b in zip(canon(rr), canon(small_web)):
            assert np.array_equal(a, b)

    def test_reverse_swaps_direction(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3)
        r = g.reverse()
        assert list(r.neighbors(1)) == [0]
        assert list(r.neighbors(2)) == [1]

    def test_reverse_carries_weights(self):
        g = CSRGraph.from_edges([0], [1], 2, weights=[9])
        assert g.reverse().weights[0] == 9

    def test_with_weights_shares_structure(self, tiny_path):
        w = np.arange(tiny_path.n_edges, dtype=np.uint32)
        g = tiny_path.with_weights(w)
        assert g.indptr is tiny_path.indptr
        assert np.array_equal(g.weights, w)

    def test_with_random_weights_deterministic(self, tiny_grid):
        a = tiny_grid.with_random_weights(seed=3).weights
        b = tiny_grid.with_random_weights(seed=3).weights
        assert np.array_equal(a, b)

    def test_with_random_weights_range(self, small_rmat):
        w = small_rmat.with_random_weights(low=2, high=5).weights
        assert w.min() >= 2 and w.max() < 5


class TestExports:
    def test_to_networkx_counts(self, tiny_grid):
        g = tiny_grid.to_networkx()
        assert g.number_of_nodes() == tiny_grid.n_vertices
        # Undirected export halves the symmetrized arc count.
        assert g.number_of_edges() == tiny_grid.n_edges // 2

    def test_to_networkx_directed(self, tiny_path):
        g = tiny_path.to_networkx()
        assert g.is_directed()
        assert g.number_of_edges() == tiny_path.n_edges

    def test_to_scipy_shape_and_sum(self, small_web):
        m = small_web.to_scipy()
        assert m.shape == (small_web.n_vertices, small_web.n_vertices)
        assert m.nnz <= small_web.n_edges  # parallel edges merge
        assert m.sum() == small_web.n_edges

    def test_to_scipy_weighted(self):
        g = CSRGraph.from_edges([0, 1], [1, 0], 2, weights=[3, 4])
        m = g.to_scipy()
        assert m[0, 1] == 3 and m[1, 0] == 4
