"""Tests for reuse-distance analysis (the §1–2 motivation tooling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import lru_hit_rate_curve, pinned_hit_rate, reuse_distances


def sets(*iterables):
    return [np.array(x, dtype=np.int64) for x in iterables]


class TestReuseDistances:
    def test_no_reuse_no_distances(self):
        assert reuse_distances(sets([0, 1], [2, 3])).size == 0

    def test_immediate_reuse_distance_one(self):
        # Stream 0,1,0: one distinct chunk (1) between the two 0-accesses.
        d = reuse_distances(sets([0, 1], [0]))
        assert list(d) == [1]

    def test_stream_reference_agrees(self):
        from repro.analysis.reuse import _access_stream, reuse_distances_stream

        rng = np.random.default_rng(7)
        chunk_sets = [np.unique(rng.integers(0, 40, size=20)) for _ in range(10)]
        a = np.sort(reuse_distances(chunk_sets))
        b = np.sort(reuse_distances_stream(_access_stream(chunk_sets)))
        assert np.array_equal(a, b)

    def test_cyclic_scan_distance_is_working_set(self):
        """The paper's pathology: scanning N chunks per iteration makes
        every reuse distance N-1 — the whole dataset."""
        n = 12
        d = reuse_distances(sets(range(n), range(n), range(n)))
        assert d.size == 2 * n
        assert np.all(d == n - 1)

    def test_empty(self):
        assert reuse_distances([]).size == 0

    def test_repeated_same_chunk(self):
        d = reuse_distances(sets([5], [5], [5]))
        assert list(d) == [0, 0]

    def _brute(self, chunk_sets):
        stream = np.concatenate([np.sort(np.asarray(c)) for c in chunk_sets])
        out = []
        last = {}
        for i, c in enumerate(stream.tolist()):
            if c in last:
                out.append(len(set(stream[last[c] + 1 : i].tolist())))
            last[c] = i
        return np.array(out, dtype=np.int64)

    @given(st.lists(st.lists(st.integers(0, 9), min_size=1, max_size=8),
                    min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_property_matches_bruteforce(self, raw):
        chunk_sets = [np.unique(np.array(c, dtype=np.int64)) for c in raw]
        # Emission order is unspecified (grouped by iteration pair);
        # the distance *distribution* is what the hit-rate math consumes.
        got = np.sort(reuse_distances(chunk_sets))
        expect = np.sort(self._brute(chunk_sets))
        assert np.array_equal(got, expect)


class TestLRUCurve:
    def test_cliff_for_cyclic_scan(self):
        """LRU gets nothing until capacity ≥ working set — Fig. 1's cliff."""
        n = 20
        chunk_sets = sets(*[range(n)] * 5)
        rates = lru_hit_rate_curve(chunk_sets, [1, n // 2, n - 1, n, n + 1])
        assert rates[0] == 0.0
        assert rates[1] == 0.0
        assert rates[2] == 0.0  # capacity n-1 still misses (distance n-1)
        assert rates[3] > 0.7  # capacity n: everything after pass 1 hits

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(3)
        chunk_sets = [rng.integers(0, 30, size=10) for _ in range(6)]
        caps = [1, 2, 4, 8, 16, 32]
        rates = lru_hit_rate_curve(chunk_sets, caps)
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_empty(self):
        assert lru_hit_rate_curve([], [1, 2]) == [0.0, 0.0]


class TestPinnedHitRate:
    def test_no_cliff(self):
        """A pinned region earns hits proportional to coverage even when
        LRU of the same size earns none — Ascetic's argument in one line."""
        n = 20
        chunk_sets = sets(*[range(n)] * 5)
        half = n // 2
        lru = lru_hit_rate_curve(chunk_sets, [half])[0]
        pinned = pinned_hit_rate(chunk_sets, half)
        assert lru == 0.0
        assert pinned > 0.35  # half the accesses from iteration 2 on

    def test_full_capacity_hits_all_reuse(self):
        n = 10
        chunk_sets = sets(*[range(n)] * 3)
        assert pinned_hit_rate(chunk_sets, n) == pytest.approx(2 / 3)

    def test_zero_capacity(self):
        assert pinned_hit_rate(sets([1, 2]), 0) == 0.0

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(4)
        chunk_sets = [rng.integers(0, 25, size=12) for _ in range(5)]
        rates = [pinned_hit_rate(chunk_sets, c) for c in (0, 5, 10, 25)]
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))
