"""Tests for the analysis tooling behind the tables and figures."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.analysis.active_edges import active_edge_fractions, table1_row
from repro.analysis.breakdown import measure_breakdown
from repro.analysis.memory_usage import run_subway, subway_idle_fraction, subway_memory_usage
from repro.analysis.report import format_table, geomean, human_bytes, sparkline
from repro.analysis.traces import AccessTrace, trace_uvm_run
from repro.graph.properties import best_source

from conftest import TEST_SCALE, make_spec_for


class TestAccessTrace:
    def test_record_and_events(self):
        t = AccessTrace()
        t.record(1.0, np.array([0, 1, 2]))
        t.record(2.0, np.array([1, 3]))
        times, chunks = t.events()
        assert times.size == 5
        assert list(chunks) == [0, 1, 2, 1, 3]

    def test_access_counts(self):
        t = AccessTrace()
        t.record(0.0, np.array([0, 1]))
        t.record(1.0, np.array([1]))
        assert list(t.access_counts(3)) == [1, 2, 0]

    def test_empty_trace(self):
        t = AccessTrace()
        times, chunks = t.events()
        assert times.size == 0
        s = t.summarize(10)
        assert s.n_iterations == 0

    def test_fig2_claims_on_uvm_run(self, small_social):
        """The §2 observations: near-sequential per-iteration scans, flat
        access counts, full coverage over the run."""
        spec = make_spec_for(small_social, edge_fraction=0.5)
        prog = make_program("PR", tol=1e-2)
        trace, summary, result = trace_uvm_run(
            small_social, prog, spec, data_scale=TEST_SCALE
        )
        assert summary.n_iterations == result.iterations
        assert summary.sequentiality > 0.8  # "roughly sequential scan"
        assert summary.count_cv < 1.0  # "no noticeable hot spot"
        assert summary.touched_fraction > 0.9


class TestActiveEdges:
    def test_fractions_in_unit_interval(self, small_social):
        fr = active_edge_fractions(small_social, make_program("CC"))
        assert all(0.0 <= f <= 1.0 for f in fr)
        assert len(fr) > 1

    def test_bfs_total_is_reached_edges(self, small_social):
        src = best_source(small_social)
        fr = active_edge_fractions(small_social, make_program("BFS", source=src))
        # BFS touches each reached vertex's edges exactly once.
        assert sum(fr) <= 1.0 + 1e-9

    def test_table1_row(self, small_social):
        row = table1_row(
            small_social,
            {
                "BFS": make_program("BFS", source=best_source(small_social)),
                "CC": make_program("CC"),
            },
        )
        assert set(row) == {"BFS", "CC"}
        assert 0 < row["BFS"] < row["CC"] <= 1.0


class TestMemoryUsage:
    def test_table2_cell(self, small_social):
        spec = make_spec_for(small_social)
        res = run_subway(
            small_social,
            make_program("BFS", source=best_source(small_social)),
            spec,
            data_scale=TEST_SCALE,
        )
        usage = subway_memory_usage(res)
        assert 0 < usage < spec.memory_bytes / TEST_SCALE
        assert 0.0 < subway_idle_fraction(res) < 1.0


class TestBreakdown:
    def test_savings_decompose(self, small_social):
        spec = make_spec_for(small_social)
        bd = measure_breakdown(
            small_social, lambda: make_program("CC"), spec, data_scale=TEST_SCALE
        )
        assert bd.static_saving + bd.overlap_saving == pytest.approx(bd.total_saving)
        assert bd.total_saving > 0.0
        assert bd.overlap_saving >= 0.0


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_empty_nan(self):
        assert np.isnan(geomean([]))

    def test_sparkline(self):
        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4
        assert s[0] == " " and s[-1] == "█"

    def test_sparkline_downsamples(self):
        assert len(sparkline(list(range(1000)), width=50)) == 50

    def test_sparkline_flat(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_human_bytes(self):
        assert human_bytes(512) == "512B"
        assert human_bytes(2048) == "2.00KB"
        assert human_bytes(3 * 1024**3) == "3.00GB"
