"""Tests for the per-granule TransferPolicy API.

Every engine expresses its data-movement rule as a policy object whose
per-iteration decisions are emitted into the event log — the same
introspection surface whether the policy is a fixed single path (Subway,
UVM), region residency (Ascetic), a pinned prefix (PT), or the Hybrid
engine's cost-model scores.  The refactor must be observability-only:
lean-mode digests and metrics cannot move.
"""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.core.ascetic import AsceticEngine
from repro.core.static_region import StaticRegion
from repro.engines.base import (
    AccessPath,
    FixedPolicy,
    PinnedPrefixPolicy,
    RegionPolicy,
    TransferPolicy,
    emit_access_plan,
)
from repro.engines.hybrid import HybridEngine
from repro.engines.partition_based import PartitionEngine
from repro.engines.subway import SubwayEngine
from repro.engines.uvm_engine import UVMEngine
from repro.graph.properties import best_source
from repro.gpusim.device import GPUSpec, SimulatedGPU

from conftest import TEST_SCALE, make_spec_for

#: engine class → the granule name its access-plan markers carry.
ENGINE_GRANULES = {
    PartitionEngine: "partition",
    UVMEngine: "page",
    SubwayEngine: "round",
    AsceticEngine: "chunk",
    HybridEngine: "chunk",
}


class TestPolicyObjects:
    def test_fixed_policy_uniform(self):
        ids = np.arange(7)
        plan = FixedPolicy(AccessPath.GATHER).plan(0, ids)
        assert plan.dtype == np.int8
        assert (plan == int(AccessPath.GATHER)).all()

    def test_fixed_policy_empty(self):
        assert len(FixedPolicy(AccessPath.DIRECT).plan(0, np.empty(0))) == 0

    def test_pinned_prefix_policy(self):
        plan = PinnedPrefixPolicy(n_pinned=3).plan(0, np.arange(6))
        assert (plan[:3] == int(AccessPath.RESIDENT)).all()
        assert (plan[3:] == int(AccessPath.MIGRATE)).all()

    def test_region_policy_tracks_residency(self, small_web):
        region = StaticRegion(small_web,
                              capacity_bytes=small_web.edge_array_bytes // 2,
                              fill="front", chunk_bytes=4096)
        policy = RegionPolicy(region)
        ids = np.arange(region.n_chunks)
        plan = policy.plan(0, ids)
        resident = region.resident[ids]
        assert (plan[resident] == int(AccessPath.RESIDENT)).all()
        assert (plan[~resident] == int(AccessPath.GATHER)).all()
        # Residency is read live: evicting a chunk flips its next plan.
        first = int(np.nonzero(resident)[0][0])
        region.swap(np.array([first]), np.empty(0, dtype=np.int64))
        assert policy.plan(1, ids)[first] == int(AccessPath.GATHER)

    def test_all_policies_satisfy_protocol(self, small_web):
        region = StaticRegion(small_web, capacity_bytes=1 << 16,
                              fill="lazy", chunk_bytes=4096)
        for policy in (FixedPolicy(AccessPath.DIRECT),
                       PinnedPrefixPolicy(2), RegionPolicy(region)):
            assert isinstance(policy, TransferPolicy)


class TestEmitAccessPlan:
    def _gpu(self, record):
        return SimulatedGPU(GPUSpec(memory_bytes=1 << 20),
                            record_events=record)

    def test_lean_mode_summary_only_no_counters(self):
        gpu = self._gpu(record=False)
        before = gpu.metrics.bytes_h2d, gpu.metrics.bytes_direct
        emit_access_plan(gpu, "X", "chunk", np.arange(4),
                         np.full(4, int(AccessPath.MIGRATE), dtype=np.int8))
        # Markers are counter-less: metrics (and hence digests) cannot move.
        assert (gpu.metrics.bytes_h2d, gpu.metrics.bytes_direct) == before
        assert gpu.events.n_events == 0  # nothing retained in lean mode

    def test_recorded_mode_emits_contiguous_runs(self):
        gpu = self._gpu(record=True)
        ids = np.array([0, 1, 2, 5, 6])
        paths = np.array([1, 1, 2, 2, 2], dtype=np.int8)
        emit_access_plan(gpu, "X", "chunk", ids, paths)
        markers = [e for e in gpu.events.events if e.kind == "access-path"]
        summary = [m for m in markers if m.label == "X:chunk"]
        assert len(summary) == 1
        counts = dict(summary[0].extra)
        assert counts == {"migrate": 2.0, "gather": 3.0}
        # Per-run markers break on path changes AND id gaps: [0,1] migrate,
        # [2] gather, [5,6] gather.
        runs = [(m.label, dict(m.extra)) for m in markers
                if m.label != "X:chunk"]
        assert runs == [
            ("migrate", {"chunk_lo": 0.0, "chunk_hi": 1.0, "n": 2.0}),
            ("gather", {"chunk_lo": 2.0, "chunk_hi": 2.0, "n": 1.0}),
            ("gather", {"chunk_lo": 5.0, "chunk_hi": 6.0, "n": 2.0}),
        ]


@pytest.mark.parametrize("engine_cls", list(ENGINE_GRANULES),
                         ids=[c.name for c in ENGINE_GRANULES])
class TestEveryEngineEmitsItsPlan:
    def _run(self, engine_cls, graph, **kwargs):
        src = best_source(graph)
        eng = engine_cls(spec=make_spec_for(graph), data_scale=TEST_SCALE,
                         **kwargs)
        res = eng.run(graph, make_program("BFS", source=src))
        return eng, res

    def test_policy_is_declared(self, engine_cls, small_social):
        eng, _ = self._run(engine_cls, small_social)
        assert isinstance(eng.transfer_policy, TransferPolicy)

    def test_plan_visible_in_recorded_trace(self, engine_cls, small_social):
        granule = ENGINE_GRANULES[engine_cls]
        _, res = self._run(engine_cls, small_social, record_events=True)
        markers = [e for e in res.event_log.events if e.kind == "access-path"]
        summaries = [m for m in markers
                     if m.label == f"{engine_cls.name}:{granule}"]
        assert summaries, "no per-iteration access-plan summary emitted"
        path_names = {p.name.lower() for p in AccessPath}
        per_run = [m for m in markers if m.label in path_names]
        assert per_run, "no per-granule decision markers in recorded mode"
        for m in per_run:
            extra = dict(m.extra)
            assert extra[f"{granule}_lo"] <= extra[f"{granule}_hi"]
            assert extra["n"] >= 1.0

    def test_recording_does_not_change_the_run(self, engine_cls, small_social):
        """The observability layer is free: lean and recorded runs agree."""
        _, lean = self._run(engine_cls, small_social)
        _, recorded = self._run(engine_cls, small_social, record_events=True)
        assert np.array_equal(lean.values, recorded.values)
        assert lean.elapsed_seconds == recorded.elapsed_seconds
        assert lean.metrics.bytes_h2d == recorded.metrics.bytes_h2d
        assert lean.metrics.bytes_direct == recorded.metrics.bytes_direct
