"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    rmat_graph,
    social_graph,
    star_graph,
    web_graph,
)
from repro.graph.properties import degree_gini, locality_fraction

from conftest import assert_graph_valid


class TestRMAT:
    def test_shape(self):
        g = rmat_graph(8, 3000, seed=1)
        assert g.n_vertices == 256
        assert g.n_edges == 6000  # undirected default: both arcs stored

    def test_undirected_doubles_arcs(self):
        g = rmat_graph(6, 100, directed=False, seed=1)
        assert g.n_edges == 200

    def test_directed_exact_arcs(self):
        g = rmat_graph(6, 100, directed=True, seed=1)
        assert g.n_edges == 100

    def test_deterministic(self):
        a = rmat_graph(8, 1000, seed=5, directed=True)
        b = rmat_graph(8, 1000, seed=5, directed=True)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_seed_changes_graph(self):
        a = rmat_graph(8, 1000, seed=5, directed=True)
        b = rmat_graph(8, 1000, seed=6, directed=True)
        assert not np.array_equal(a.indices, b.indices)

    def test_degree_skew(self):
        g = rmat_graph(11, 40000, seed=2, directed=True)
        # RMAT must be visibly more skewed than uniform random.
        er = erdos_renyi_graph(2048, 40000, seed=2)
        assert degree_gini(g) > degree_gini(er) + 0.15

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(5, 10, a=0.7, b=0.3, c=0.2)

    def test_valid(self):
        assert_graph_valid(rmat_graph(9, 5000, seed=3))


class TestWebGraph:
    def test_shape_and_direction(self):
        g = web_graph(1000, 8000, seed=1)
        assert g.n_vertices == 1000
        assert g.n_edges == 8000
        assert g.directed

    def test_strong_locality(self):
        g = web_graph(5000, 40000, seed=2)
        assert locality_fraction(g, window=256) > 0.7

    def test_deterministic(self):
        a = web_graph(500, 4000, seed=9)
        b = web_graph(500, 4000, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_deep_bfs(self, small_web):
        from repro.algorithms import BFS
        from repro.graph.properties import best_source

        levels = BFS(source=best_source(small_web)).run_reference(small_web)
        # The whole point of the preset: crawl-like depth, not 5 hops.
        assert levels.max() > 20

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            web_graph(10, 10, frac_long=1.5)
        with pytest.raises(ValueError):
            web_graph(10, 10, alpha=0.0)
        with pytest.raises(ValueError):
            web_graph(10, 10, window=0)

    def test_valid(self):
        assert_graph_valid(web_graph(300, 2000, seed=4))


class TestSocialGraph:
    def test_undirected(self, small_social):
        assert not small_social.directed
        fwd = sorted(zip(small_social.edge_sources().tolist(), small_social.indices.tolist()))
        rev = sorted(zip(small_social.indices.tolist(), small_social.edge_sources().tolist()))
        assert fwd == rev

    def test_hub_skew(self, small_social):
        assert degree_gini(small_social) > 0.25

    def test_arc_count(self):
        g = social_graph(400, 3000, seed=7)
        assert g.n_edges == 6000  # both arcs

    def test_deterministic(self):
        a = social_graph(300, 2000, seed=3)
        b = social_graph(300, 2000, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_moderate_depth(self, small_social):
        from repro.algorithms import BFS
        from repro.graph.properties import best_source

        levels = BFS(source=best_source(small_social)).run_reference(small_social)
        assert 3 <= levels.max() < 200

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            social_graph(10, 10, hub_exponent=-1)


class TestDeterministicGraphs:
    def test_path(self):
        g = path_graph(5)
        assert g.n_edges == 4
        assert list(g.neighbors(2)) == [3]
        assert g.neighbors(4).size == 0

    def test_cycle(self):
        g = cycle_graph(4)
        assert g.n_edges == 4
        assert list(g.neighbors(3)) == [0]

    def test_star(self):
        g = star_graph(6)
        assert g.out_degree()[0] == 5
        assert g.n_edges == 5

    def test_grid_degrees(self):
        g = grid_graph(3, 4)
        deg = g.out_degree()
        # Undirected grid: corners 2, edges 3, interior 4.
        assert deg.min() == 2 and deg.max() == 4
        assert g.n_edges == 2 * (3 * 3 + 2 * 4)

    def test_complete(self):
        g = complete_graph(5)
        assert g.n_edges == 20
        assert np.all(g.out_degree() == 4)

    def test_erdos_renyi_shape(self):
        g = erdos_renyi_graph(100, 500, seed=1)
        assert g.n_vertices == 100
        assert g.n_edges == 500
