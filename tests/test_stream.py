"""Tests for lane scheduling — the overlap machinery behind Fig. 5."""

import pytest

from repro.gpusim.clock import VirtualClock
from repro.gpusim.stream import Lane


@pytest.fixture()
def clock():
    return VirtualClock()


class TestLane:
    def test_sequential_on_one_lane(self, clock):
        lane = Lane("gpu", clock)
        t1 = lane.submit(2.0)
        t2 = lane.submit(3.0)
        assert (t1, t2) == (2.0, 5.0)

    def test_negative_duration_rejected(self, clock):
        with pytest.raises(ValueError):
            Lane("gpu", clock).submit(-1.0)

    def test_submit_does_not_advance_clock(self, clock):
        lane = Lane("gpu", clock)
        lane.submit(5.0)
        assert clock.now == 0.0

    def test_sync_advances_clock(self, clock):
        lane = Lane("gpu", clock)
        lane.submit(5.0)
        assert lane.sync() == 5.0
        assert clock.now == 5.0

    def test_dependency_delays_start(self, clock):
        gpu = Lane("gpu", clock)
        copy = Lane("copy", clock)
        t_copy = copy.submit(4.0)
        t_gpu = gpu.submit(1.0, after=t_copy)
        assert t_gpu == 5.0

    def test_parallel_lanes_overlap(self, clock):
        """Fig. 5's whole point: overlapped total = max, not sum."""
        gpu = Lane("gpu", clock)
        cpu = Lane("cpu", clock)
        t1 = gpu.submit(3.0)  # static compute
        t2 = cpu.submit(2.0)  # gather, concurrent
        assert max(t1, t2) == 3.0

    def test_sequential_chain_is_sum(self, clock):
        """The Subway baseline: each step waits for the previous."""
        gpu = Lane("gpu", clock)
        cpu = Lane("cpu", clock)
        clock.advance_to(cpu.submit(2.0))
        clock.advance_to(gpu.submit(3.0))
        assert clock.now == 5.0

    def test_busy_seconds_accumulates(self, clock):
        lane = Lane("gpu", clock)
        lane.submit(1.0)
        lane.submit(2.0)
        assert lane.busy_seconds == 3.0

    def test_idle_seconds(self, clock):
        lane = Lane("gpu", clock)
        lane.submit(1.0)
        clock.advance_to(10.0)
        assert lane.idle_seconds() == 9.0

    def test_idle_never_negative(self, clock):
        lane = Lane("gpu", clock)
        lane.submit(4.0)  # busy beyond now
        assert lane.idle_seconds() == 0.0

    def test_n_ops(self, clock):
        lane = Lane("gpu", clock)
        lane.submit(1.0)
        lane.submit(2.0)
        assert lane.n_ops == 2

    def test_empty_op_short_circuited(self, clock):
        """Zero work with no counters leaves no trace anywhere (uniform)."""
        lane = Lane("gpu", clock)
        end = lane.submit(0.0, label="noop")
        assert end == 0.0
        assert lane.n_ops == 0
        assert lane.busy_until == 0.0
        assert lane.log.n_events == 0 and lane.log.lane_stats == {}

    def test_zero_duration_with_counters_still_counted(self, clock):
        """Counter-bearing instant work emits an event but no span time."""
        lane = Lane("copy", clock)
        lane.submit(0.0, label="meta", counters={"h2d_transfers": 1})
        assert lane.n_ops == 1
        assert lane.busy_seconds == 0.0
        assert lane.log.metrics.h2d_transfers == 1

    def test_work_after_clock_advances(self, clock):
        lane = Lane("gpu", clock)
        clock.advance_to(7.0)
        assert lane.submit(1.0) == 8.0

    def test_span_recording(self):
        clock = VirtualClock(record=True)
        lane = Lane("gpu", clock)
        lane.submit(2.0, label="kernel")
        assert clock.spans[0].label == "kernel"
        assert clock.spans[0].lane == "gpu"

    def test_zero_duration_not_logged(self):
        clock = VirtualClock(record=True)
        Lane("gpu", clock).submit(0.0, label="noop")
        assert clock.spans == []
