"""Tests for graph statistics (repro.graph.properties)."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi_graph, star_graph
from repro.graph.properties import (
    best_source,
    degree_gini,
    graph_stats,
    locality_fraction,
)


class TestDegreeGini:
    def test_uniform_degrees_near_zero(self):
        assert degree_gini(complete_graph(20)) == pytest.approx(0.0, abs=1e-9)

    def test_star_is_extreme(self):
        g = star_graph(100)
        assert degree_gini(g) > 0.9

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], [], 5)
        assert degree_gini(g) == 0.0

    def test_bounded(self, small_rmat, small_web, small_social):
        for g in (small_rmat, small_web, small_social):
            assert 0.0 <= degree_gini(g) <= 1.0


class TestLocality:
    def test_path_fully_local(self, tiny_path):
        assert locality_fraction(tiny_path, window=1) == 1.0

    def test_empty_graph(self):
        assert locality_fraction(CSRGraph.from_edges([], [], 3)) == 0.0

    def test_window_monotone(self, small_web):
        small = locality_fraction(small_web, window=8)
        large = locality_fraction(small_web, window=4096)
        assert small <= large

    def test_random_graph_low_locality(self):
        g = erdos_renyi_graph(10_000, 50_000, seed=3)
        assert locality_fraction(g, window=16) < 0.05


class TestGraphStats:
    def test_fields(self, small_social):
        s = graph_stats(small_social)
        assert s.n_vertices == small_social.n_vertices
        assert s.n_edges == small_social.n_edges
        assert s.max_out_degree == int(small_social.out_degree().max())
        assert s.mean_out_degree == pytest.approx(
            small_social.n_edges / small_social.n_vertices
        )
        assert 0 <= s.isolated_fraction <= 1

    def test_empty_graph(self):
        s = graph_stats(CSRGraph.from_edges([], [], 0))
        assert s.n_vertices == 0 and s.max_out_degree == 0

    def test_str_smoke(self, small_web):
        assert "n=" in str(graph_stats(small_web))


class TestBestSource:
    def test_picks_max_degree(self, tiny_star):
        assert best_source(tiny_star) == 0

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            best_source(CSRGraph.from_edges([], [], 0))
