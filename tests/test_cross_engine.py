"""Cross-engine equivalence: the paper's four engines are *data-movement*
policies — every one must produce bit-identical algorithm results."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.algorithms.validate import (
    assert_allclose_ranks,
    reference_bfs_levels,
    reference_cc_labels,
    reference_pagerank,
    reference_sssp_distances,
)
from repro.core.ascetic import AsceticEngine
from repro.engines.hybrid import HybridEngine
from repro.engines.partition_based import PartitionEngine
from repro.engines.subway import SubwayEngine
from repro.engines.uvm_engine import UVMEngine
from repro.graph.properties import best_source

from conftest import TEST_SCALE, make_spec_for

#: The paper's four engines — the ordering claims below are about these.
PAPER_ENGINES = [PartitionEngine, UVMEngine, SubwayEngine, AsceticEngine]
#: Every engine must agree bit for bit, including the Hybrid extension.
ALL_ENGINES = PAPER_ENGINES + [HybridEngine]
PAPER_NAMES = tuple(cls.name for cls in PAPER_ENGINES)


def run_all(graph, prog_factory, spec):
    return {
        cls.name: cls(spec=spec, data_scale=TEST_SCALE).run(graph, prog_factory())
        for cls in ALL_ENGINES
    }


@pytest.mark.parametrize("graph_fixture", ["small_social", "small_web"])
class TestEquivalence:
    def test_bfs(self, graph_fixture, request):
        g = request.getfixturevalue(graph_fixture)
        src = best_source(g)
        results = run_all(g, lambda: make_program("BFS", source=src), make_spec_for(g))
        ref = reference_bfs_levels(g, src)
        for name, res in results.items():
            assert np.array_equal(res.values, ref), name

    def test_sssp(self, graph_fixture, request):
        g = request.getfixturevalue(graph_fixture).with_random_weights(high=4, seed=3)
        src = best_source(g)
        results = run_all(g, lambda: make_program("SSSP", source=src), make_spec_for(g))
        ref = reference_sssp_distances(g, src)
        for name, res in results.items():
            assert np.array_equal(res.values, ref), name

    def test_cc(self, graph_fixture, request):
        g = request.getfixturevalue(graph_fixture)
        results = run_all(g, lambda: make_program("CC"), make_spec_for(g))
        ref = reference_cc_labels(g)
        for name, res in results.items():
            assert np.array_equal(res.values, ref), name

    def test_pr(self, graph_fixture, request):
        g = request.getfixturevalue(graph_fixture)
        results = run_all(g, lambda: make_program("PR", tol=1e-4), make_spec_for(g))
        ref = reference_pagerank(g)
        for name, res in results.items():
            assert_allclose_ranks(res.values, ref, rtol=2e-2)

    def test_identical_iteration_counts(self, graph_fixture, request):
        """Same supersteps everywhere — engines cannot change convergence."""
        g = request.getfixturevalue(graph_fixture)
        results = run_all(g, lambda: make_program("CC"), make_spec_for(g))
        iters = {res.iterations for res in results.values()}
        assert len(iters) == 1


class TestExpectedOrdering:
    """The paper's headline orderings hold on an oversubscribed workload."""

    @pytest.fixture(scope="class")
    def results(self, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        return run_all(small_social, lambda: make_program("CC"), spec)

    def test_ascetic_fastest(self, results):
        # Among the paper's engines — the Hybrid extension is allowed (and
        # on some cells expected) to beat Ascetic; see test_hybrid.py.
        t = {k: results[k].elapsed_seconds for k in PAPER_NAMES}
        assert t["Ascetic"] == min(t.values())

    def test_subway_beats_pt_on_sparse_frontiers(self, small_social):
        # CC's dense frontiers can make Subway ≈ PT (the paper's CC rows
        # show ratios near 1); BFS's sparse frontiers are where the
        # fine-grained scheme must win decisively.
        spec = make_spec_for(small_social, edge_fraction=0.4)
        src = best_source(small_social)
        results = run_all(small_social, lambda: make_program("BFS", source=src), spec)
        assert results["Subway"].elapsed_seconds < results["PT"].elapsed_seconds

    def test_pt_moves_most_data(self, results):
        x = {k: v.metrics.bytes_h2d for k, v in results.items()}
        assert x["PT"] == max(x.values())

    def test_ascetic_moves_least_processing_data(self, results):
        # Again among the paper's engines: Hybrid's zero-copy path moves
        # bytes outside the H2D counter, so it is excluded by construction.
        x = {k: results[k].processing_bytes_h2d for k in PAPER_NAMES}
        assert x["Ascetic"] == min(x.values())
