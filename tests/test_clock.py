"""Tests for the virtual clock."""

import pytest

from repro.gpusim.clock import Span, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        c = VirtualClock()
        assert c.advance(1.5) == 1.5
        assert c.advance(0.5) == 2.0

    def test_advance_zero_ok(self):
        c = VirtualClock()
        c.advance(0.0)
        assert c.now == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to_future(self):
        c = VirtualClock()
        c.advance_to(3.0)
        assert c.now == 3.0

    def test_advance_to_past_is_noop(self):
        c = VirtualClock(now=5.0)
        c.advance_to(2.0)
        assert c.now == 5.0

    def test_reset(self):
        c = VirtualClock(record=True)
        c.advance(1.0)
        c.log("gpu", "k", 0.0, 1.0)
        c.reset()
        assert c.now == 0.0 and not c.spans


class TestSpans:
    def test_logging_disabled_by_default(self):
        c = VirtualClock()
        assert c.log("gpu", "k", 0.0, 1.0) is None
        assert c.spans == []

    def test_logging_enabled(self):
        c = VirtualClock(record=True)
        s = c.log("copy", "h2d", 1.0, 2.5)
        assert s == Span("copy", "h2d", 1.0, 2.5)
        assert c.spans == [s]

    def test_span_duration(self):
        assert Span("gpu", "k", 1.0, 3.5).duration == 2.5
