"""Model-vs-measurement: closed-form predictions match engine metrics."""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.analysis.predict import (
    predict_pt_bytes,
    predict_subway_bytes,
    record_active_trace,
)
from repro.engines.partition_based import PartitionEngine
from repro.engines.subway import SubwayEngine
from repro.graph.properties import best_source

from conftest import TEST_SCALE, make_spec_for


class TestActiveTrace:
    def test_records_every_iteration(self, small_social):
        prog = make_program("CC")
        trace = record_active_trace(small_social, prog)
        assert trace.iterations > 1
        assert len(trace.n_active_edges) == trace.iterations
        # Iteration 1 of CC activates everyone.
        assert trace.n_active_vertices[0] == small_social.n_vertices
        assert trace.n_active_edges[0] == small_social.n_edges


@pytest.mark.parametrize("algo", ["BFS", "CC"])
class TestPredictionsMatchEngines:
    def _program(self, algo, graph):
        if algo in ("BFS", "SSSP"):
            return make_program(algo, source=best_source(graph))
        return make_program(algo)

    def test_subway_exact(self, algo, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        trace = record_active_trace(small_social, self._program(algo, small_social))
        predicted = predict_subway_bytes(
            small_social, trace, spec, data_scale=TEST_SCALE
        )
        measured = SubwayEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, self._program(algo, small_social)
        )
        assert measured.metrics.bytes_h2d == predicted

    def test_pt_exact(self, algo, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        trace = record_active_trace(small_social, self._program(algo, small_social))
        predicted = predict_pt_bytes(small_social, trace, spec, data_scale=TEST_SCALE)
        measured = PartitionEngine(spec=spec, data_scale=TEST_SCALE).run(
            small_social, self._program(algo, small_social)
        )
        assert measured.metrics.bytes_h2d == predicted

    def test_pt_double_buffer_exact(self, algo, small_social):
        spec = make_spec_for(small_social, edge_fraction=0.4)
        trace = record_active_trace(small_social, self._program(algo, small_social))
        predicted = predict_pt_bytes(
            small_social, trace, spec, data_scale=TEST_SCALE, double_buffer=True
        )
        measured = PartitionEngine(
            spec=spec, data_scale=TEST_SCALE, double_buffer=True
        ).run(small_social, self._program(algo, small_social))
        assert measured.metrics.bytes_h2d == predicted
