#!/usr/bin/env python
"""Reproduce the paper's headline numbers in one script.

A condensed version of what ``pytest benchmarks/ --benchmark-only`` does
in full: runs the 4-dataset × 4-algorithm grid on all four engines and
prints the three headline comparisons —

* Table 4's geomean speedups over PT (paper: Subway 5.6×, Ascetic 11.4×);
* Table 5's geomean transfer ratios (paper: 32.5× / 3.6× / 1.4×);
* Fig. 7's mean Ascetic-vs-Subway speedup (paper: 2.0×).

Writes a machine-readable record to ``headlines.json``.

Run:  python examples/reproduce_headlines.py         (~2 minutes)
"""

from repro.analysis.report import format_table, geomean
from repro.harness.experiments import BENCH_SCALE, make_workload, run_all_engines
from repro.harness.persistence import save_results

DATASETS = ("GS", "FK", "FS", "UK")
ALGOS = ("BFS", "SSSP", "CC", "PR")

grid = {}
all_runs = []
for abbr in DATASETS:
    for algo in ALGOS:
        w = make_workload(abbr, algo, scale=BENCH_SCALE)
        grid[(abbr, algo)] = run_all_engines(w)
        all_runs.extend(grid[(abbr, algo)].values())
        print(f"  ran {algo:<4} on {abbr}")

sub_speed, asc_speed, asc_vs_sub = [], [], []
xfer = {"PT": [], "Subway": [], "Ascetic": []}
for cell in grid.values():
    pt = cell["PT"].elapsed_seconds
    sub_speed.append(pt / cell["Subway"].elapsed_seconds)
    asc_speed.append(pt / cell["Ascetic"].elapsed_seconds)
    asc_vs_sub.append(cell["Subway"].elapsed_seconds / cell["Ascetic"].elapsed_seconds)
    for name in xfer:
        xfer[name].append(max(cell[name].transfer_over_dataset, 1e-3))

rows = [
    ["Subway speedup over PT (geomean)", f"{geomean(sub_speed):.1f}x", "5.6x"],
    ["Ascetic speedup over PT (geomean)", f"{geomean(asc_speed):.1f}x", "11.4x"],
    ["Ascetic speedup over Subway (mean)", f"{geomean(asc_vs_sub):.2f}x", "2.0x"],
    ["PT transfer / dataset (geomean)", f"{geomean(xfer['PT']):.1f}x", "32.5x"],
    ["Subway transfer / dataset (geomean)", f"{geomean(xfer['Subway']):.2f}x", "3.6x"],
    ["Ascetic transfer / dataset (geomean)", f"{geomean(xfer['Ascetic']):.2f}x", "1.4x"],
]
print()
print(format_table(["headline", "measured", "paper"], rows,
                   title="Ascetic reproduction — headline numbers"))

save_results(all_runs, "headlines.json")
print("\nfull per-run telemetry written to headlines.json")
