#!/usr/bin/env python
"""Quickstart: run Ascetic on an out-of-memory graph and check the answer.

This walks the 60-second path through the library:

1. load a scaled analogue of the paper's friendster-konect dataset;
2. build the simulated GPU platform (device memory scaled with the data);
3. run BFS under the Ascetic engine;
4. validate the result against networkx;
5. read the accounting every engine reports.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AsceticEngine, GPUSpec, load_dataset
from repro.algorithms import make_program
from repro.algorithms.validate import reference_bfs_levels
from repro.analysis.report import human_bytes
from repro.graph.properties import best_source

# 1. A 1/5000-scale friendster-konect analogue.  The loader scales the
#    GPU capacity with the data, so the memory:dataset pressure matches
#    the paper's 10 GB card.
SCALE = 2e-4
dataset = load_dataset("FK", scale=SCALE)
graph = dataset.graph
print(f"dataset : {graph}")
print(f"device  : {human_bytes(dataset.gpu_memory_bytes)} "
      f"(paper-scale {human_bytes(dataset.gpu_memory_bytes / SCALE)})")

# 2. The simulated platform: PCIe link, kernel model, host gather — all
#    defaults approximate the paper's P100 testbed (§4.1).
spec = GPUSpec(memory_bytes=dataset.gpu_memory_bytes)

# 3. BFS from the max-degree hub under Ascetic.  `data_scale` tells the
#    simulator to charge costs at paper scale, so reported seconds and
#    bytes are directly comparable with the paper's tables.
source = best_source(graph)
engine = AsceticEngine(spec=spec, data_scale=SCALE)
result = engine.run(graph, make_program("BFS", source=source))

# 4. The values are real — exact BFS levels, independent of the engine.
expected = reference_bfs_levels(graph, source)
assert np.array_equal(result.values, expected)
print(f"\nBFS from hub {source}: {int((result.values >= 0).sum()):,} vertices "
      f"reached in {result.iterations} supersteps — matches networkx ✓")

# 5. The accounting the paper's evaluation is made of.
print(f"\nvirtual time      : {result.elapsed_seconds:.3f}s (paper scale)")
print(f"H2D traffic       : {human_bytes(result.metrics.bytes_h2d)} "
      f"({result.transfer_over_dataset:.2f}x dataset, prestore excluded)")
print(f"static region     : {human_bytes(result.extra['static_region_bytes'])} "
      f"(ratio {result.extra['static_ratio']:.2f} from Eq. 2)")
print(f"GPU idle fraction : {result.gpu_idle_fraction:.1%}")
