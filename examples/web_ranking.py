#!/usr/bin/env python
"""Web-scale ranking: PageRank on a crawl that dwarfs GPU memory.

The scenario from the paper's introduction: a search engine ranks a web
crawl (here the uk-2007-04 analogue) whose edge data exceeds device
memory.  This example compares all four data-movement policies on the
same computation and prints where Ascetic's advantage comes from.

Run:  python examples/web_ranking.py
"""

import numpy as np

from repro import GPUSpec, load_dataset
from repro.algorithms import make_program
from repro.algorithms.validate import reference_pagerank
from repro.analysis.report import format_table, human_bytes
from repro.harness.experiments import ENGINES

SCALE = 2e-4
dataset = load_dataset("UK", scale=SCALE)
graph = dataset.graph
spec = GPUSpec(memory_bytes=dataset.gpu_memory_bytes)
print(f"ranking {graph} on a "
      f"{human_bytes(dataset.gpu_memory_bytes / SCALE)} (paper-scale) device\n")

results = {}
for name, cls in ENGINES.items():
    engine = cls(spec=spec, data_scale=SCALE)
    results[name] = engine.run(graph, make_program("PR", tol=1e-2))

# Every engine must rank the pages identically (they differ only in how
# edge data reaches the GPU).
baseline = results["Ascetic"].values
for name, res in results.items():
    assert np.allclose(res.values, baseline, rtol=1e-9), name

rows = []
for name, res in results.items():
    rows.append(
        [
            name,
            f"{res.elapsed_seconds:.1f}s",
            f"{results['Ascetic'].elapsed_seconds / res.elapsed_seconds:.2f}x",
            human_bytes(res.metrics.bytes_h2d),
            f"{res.gpu_idle_fraction:.0%}",
        ]
    )
print(format_table(
    ["engine", "time (paper scale)", "vs Ascetic", "H2D traffic", "GPU idle"],
    rows,
))

# Sanity: the ranking is the real PageRank fixpoint.
reference = reference_pagerank(graph)
top_measured = np.argsort(baseline)[-10:][::-1]
top_reference = np.argsort(reference)[-10:][::-1]
overlap = len(set(top_measured.tolist()) & set(top_reference.tolist()))
print(f"\ntop-10 pages agree with the exact solve on {overlap}/10 entries")
print("top-5 page ids:", top_measured[:5].tolist())
