#!/usr/bin/env python
"""Social-network analysis: reachability and communities out-of-memory.

The other motivating workload class (recommender systems, §3.1): on a
friendster-scale social graph, compute single-source reachability (BFS),
shortest hop+weight paths (SSSP), and connected components (CC), all under
the Ascetic engine, and show the per-iteration dynamics that make
cross-iteration reuse worthwhile.

Run:  python examples/social_analysis.py
"""

import numpy as np

from repro import AsceticEngine, GPUSpec, SubwayEngine, load_dataset
from repro.algorithms import make_program
from repro.analysis.report import format_table, human_bytes, sparkline
from repro.graph.properties import best_source, graph_stats

SCALE = 2e-4
dataset = load_dataset("FS", scale=SCALE)
graph = dataset.graph
spec = GPUSpec(memory_bytes=dataset.gpu_memory_bytes)
print(f"analysing {graph}")
print(f"stats: {graph_stats(graph)}\n")

source = best_source(graph)
rows = []
for algo in ("BFS", "SSSP", "CC"):
    g = graph.with_random_weights(high=3) if algo == "SSSP" else graph
    kwargs = {"source": source} if algo in ("BFS", "SSSP") else {}
    asc = AsceticEngine(spec=spec, data_scale=SCALE).run(g, make_program(algo, **kwargs))
    sub = SubwayEngine(spec=spec, data_scale=SCALE).run(g, make_program(algo, **kwargs))
    rows.append(
        [
            algo,
            asc.iterations,
            f"{asc.elapsed_seconds:.2f}s",
            f"{sub.elapsed_seconds / asc.elapsed_seconds:.2f}x",
            human_bytes(asc.processing_bytes_h2d),
        ]
    )
    if algo == "BFS":
        frontier = [rec.n_active_edges for rec in asc.per_iteration]
        print("BFS frontier size over supersteps:")
        print(" ", sparkline(frontier, width=60), f" (peak {max(frontier):,} edges)")
        reached = int((asc.values >= 0).sum())
        print(f"  {reached:,}/{graph.n_vertices:,} members reachable "
              f"from hub {source}\n")
    if algo == "CC":
        labels = asc.values
        sizes = np.sort(np.bincount(labels - labels.min()))[::-1]
        sizes = sizes[sizes > 0]
        print(f"communities: {sizes.size:,} components; "
              f"largest covers {sizes[0] / graph.n_vertices:.1%} of members\n")

print(format_table(
    ["algorithm", "supersteps", "Ascetic time", "speedup vs Subway", "processing H2D"],
    rows,
))
