#!/usr/bin/env python
"""The Fig. 5 story, read straight off one event log.

Subway-style processing runs gather → transfer → compute strictly in
sequence, so the GPU idles while the CPU fills buffers; Ascetic overlaps
the on-demand transfers of iteration *i* with the static-region compute of
iteration *i*, which is the paper's headline latency win.  Both claims are
*timeline* claims, so this example records one run of each engine with
``record_events=True`` and renders the per-lane event log as an ASCII
timeline — the same data `repro trace` exports for ui.perfetto.dev.

Run:  python examples/trace_timeline.py
"""

from repro.gpusim.events import idle_breakdown
from repro.harness.experiments import make_workload, run_workload

SCALE = 5e-5
WIDTH = 72  # timeline columns

workload = make_workload("FK", "BFS", scale=SCALE)


def render(result, lanes=("cpu", "copy", "gpu")):
    """Draw each lane as a row of WIDTH cells; '#' marks busy time."""
    horizon = result.elapsed_seconds
    log = result.event_log
    print(f"\n{result.engine}: {result.iterations} iterations, "
          f"{horizon:.2f}s simulated")
    for lane in lanes:
        cells = [" "] * WIDTH
        for e in log.events:
            if e.lane != lane or e.end <= e.start:
                continue
            lo = int(e.start / horizon * WIDTH)
            hi = max(int(e.end / horizon * WIDTH), lo + 1)
            for i in range(lo, min(hi, WIDTH)):
                cells[i] = "#"
        b = idle_breakdown(log, lane, horizon)
        print(f"  {lane:>4} |{''.join(cells)}| busy {b.busy:6.2f}s  "
              f"idle {b.idle:6.2f}s (lead {b.lead:.2f} / "
              f"stall {b.stall:.2f} / tail {b.tail:.2f})")


subway = run_workload(workload, "Subway", record_events=True)
ascetic = run_workload(workload, "Ascetic", record_events=True)

render(subway)
render(ascetic)

# The number behind the pictures: mid-run stalls are where Subway's GPU
# waits for the sequential gather+transfer, and what Ascetic's overlap
# removes (§2.2 measures this at 68 % idle on the paper's testbed).
for r in (subway, ascetic):
    b = idle_breakdown(r.event_log, "gpu", r.elapsed_seconds)
    print(f"\n{r.engine:>8}: GPU idle {b.idle_fraction:5.1%} of the run "
          f"({b.stall:.2f}s of it mid-run stalls)")

speedup = subway.elapsed_seconds / ascetic.elapsed_seconds
print(f"\nAscetic end-to-end speedup over Subway: {speedup:.2f}x")
