#!/usr/bin/env python
"""Tuning the Static/On-demand split for your own workload.

Reproduces the paper's Fig. 10 methodology on a user-supplied graph: sweep
the forced Static Region ratio, print the component timers, and compare
against the analytic Eq. 2 pick.  Useful when adopting Ascetic for a
workload whose active fraction K differs from the 10 % default.

Run:  python examples/memory_tuning.py
"""

from repro.analysis.report import format_table, sparkline
from repro.core.ratio import static_ratio
from repro.graph.generators import social_graph
from repro.gpusim.device import GPUSpec
from repro.harness.experiments import Workload
from repro.harness.sweeps import sweep_static_ratio
from repro.algorithms import make_program

# Bring your own graph — anything in CSR form works.  Here: a synthetic
# 600k-arc community graph, on a device that holds ~45 % of it.
SCALE = 1e-2  # pretend this is 1/100 of the real deployment
graph = social_graph(20_000, 300_000, seed=9)
spec = GPUSpec(memory_bytes=graph.vertex_state_bytes + graph.edge_array_bytes * 45 // 100)

workload = Workload(
    dataset=None,
    algorithm="PR",
    graph=graph,
    spec=spec,
    scale=SCALE,
    program_factory=lambda: make_program("PR", tol=1e-2),
)

ratios = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0]
points, subway_seconds, eq2 = sweep_static_ratio(workload, ratios)

rows = [
    [f"{p.ratio:.2f}", f"{p.total_seconds:.2f}s", f"{p.t_sr:.2f}s",
     f"{p.t_filling:.2f}s", f"{p.t_transfer:.2f}s", f"{p.t_ondemand:.2f}s"]
    for p in points
]
print(format_table(
    ["ratio", "total", "Tsr", "Tfilling", "Ttransfer", "Tondemand"],
    rows,
    title="Static Region ratio sweep (PR on a custom community graph)",
))
print("\ntotal time over ratio:", sparkline([p.total_seconds for p in points],
                                            width=len(points)))
best = min(points, key=lambda p: p.total_seconds)
print(f"\nsweep optimum   : ratio {best.ratio:.2f} → {best.total_seconds:.2f}s")
print(f"Eq. 2 analytic  : ratio {eq2:.2f} (K = 10% default)")
print(f"Subway baseline : {subway_seconds:.2f}s")

# Eq. 2 with a measured K: feed the real active fraction back in.
from repro.analysis.active_edges import active_edge_fractions

fractions = active_edge_fractions(graph, workload.fresh_program())
k_measured = sum(fractions) / len(fractions)
eq2_tuned = static_ratio(
    k_measured, graph.edge_array_bytes,
    spec.memory_bytes - graph.vertex_state_bytes,
)
print(f"measured K      : {k_measured:.1%} → Eq. 2 ratio {eq2_tuned:.2f}")
