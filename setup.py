# Shim for environments without PEP 517 editable support
# (`pip install -e . --no-build-isolation` uses pyproject.toml; this file
# additionally enables the legacy `python setup.py develop` path).
from setuptools import setup

setup()
